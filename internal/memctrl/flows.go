package memctrl

import (
	"attache/internal/config"
	"attache/internal/dram"
	"attache/internal/sim"
)

// Read requests the 64-byte line at lineAddr; done runs when the complete
// line is available at the controller. The request path depends on the
// system organization.
func (s *System) Read(lineAddr uint64, done func(now sim.Time)) {
	start := s.eng.Now()
	finish := func(now sim.Time) {
		s.Stats.ReadLatency.Observe(float64(now - start))
		if done != nil {
			done(now)
		}
	}
	switch s.kind {
	case config.SystemBaseline:
		s.readBaseline(lineAddr, finish)
	case config.SystemIdeal:
		s.readIdeal(lineAddr, finish)
	case config.SystemAttache:
		s.readAttache(lineAddr, finish)
	case config.SystemMDCache:
		s.readMDCache(lineAddr, finish)
	case config.SystemECC:
		s.readECC(lineAddr, finish)
	}
}

// Write posts the 64-byte line at lineAddr.
func (s *System) Write(lineAddr uint64) {
	switch s.kind {
	case config.SystemBaseline:
		s.writeBaseline(lineAddr)
	case config.SystemIdeal:
		s.writeIdeal(lineAddr)
	case config.SystemAttache:
		s.writeAttache(lineAddr)
	case config.SystemMDCache:
		s.writeMDCache(lineAddr)
	case config.SystemECC:
		s.writeECC(lineAddr)
	}
}

// --- Baseline: no compression, no sub-ranking --------------------------

func (s *System) readBaseline(lineAddr uint64, done func(sim.Time)) {
	s.Stats.DataReads.Inc()
	loc := s.mapper.Decode(lineAddr)
	s.submit(&dram.Request{Loc: loc, SubRanks: dram.SubRankBoth, Done: done})
}

func (s *System) writeBaseline(lineAddr uint64) {
	s.Stats.DataWrites.Inc()
	loc := s.mapper.Decode(lineAddr)
	s.submit(&dram.Request{Write: true, Loc: loc, SubRanks: dram.SubRankBoth})
}

// --- Ideal: oracle metadata, zero overhead -----------------------------

func (s *System) readIdeal(lineAddr uint64, done func(sim.Time)) {
	s.Stats.DataReads.Inc()
	loc := s.mapper.Decode(lineAddr)
	comp := s.compressed(lineAddr)
	s.Stats.CompressedReads.Observe(comp)
	mask := dram.SubRankBoth
	if comp {
		mask = subRankFor(loc)
	}
	s.submit(&dram.Request{Loc: loc, SubRanks: mask, Done: done})
}

func (s *System) writeIdeal(lineAddr uint64) {
	s.Stats.DataWrites.Inc()
	loc := s.mapper.Decode(lineAddr)
	mask := dram.SubRankBoth
	if s.compressed(lineAddr) {
		mask = subRankFor(loc)
	}
	s.submit(&dram.Request{Write: true, Loc: loc, SubRanks: mask})
}

// --- Attaché: BLEM + COPR ----------------------------------------------

func (s *System) readAttache(lineAddr uint64, done func(sim.Time)) {
	// The COPR lookup costs the same 8 cycles as a metadata-cache probe
	// (paper §V); the request issues after it.
	s.eng.ScheduleAfter(s.cfg.Attache.PredictorLatency, func(sim.Time) {
		s.issueAttacheRead(lineAddr, done)
	})
}

func (s *System) issueAttacheRead(lineAddr uint64, done func(sim.Time)) {
	loc := s.mapper.Decode(lineAddr)
	actual := s.compressed(lineAddr)
	collision := s.collides(lineAddr)
	predicted, _ := s.copr.Predict(lineAddr * config.LineSize)
	s.Stats.CompressedReads.Observe(actual)
	s.Stats.DataReads.Inc()
	if s.checker != nil {
		s.checker.OnReadIssue(lineAddr, predicted, actual, s.eng.Now())
	}

	// Completion (predictor update + checker + caller callback) is a
	// method, not a closure: the common correct-prediction paths call it
	// straight from the DRAM Done callback, so the only closure built per
	// read is that callback itself. The correction paths (misprediction,
	// collision) wrap it in a closure, but those are rare by design —
	// COPR's whole point is that they are.
	if predicted {
		// Fetch only the header-bearing sub-rank block.
		s.submit(&dram.Request{Loc: loc, SubRanks: subRankFor(loc), Done: func(now sim.Time) {
			if actual {
				// BLEM confirms: compressed, done.
				s.completeAttacheRead(lineAddr, actual, done, now)
				return
			}
			// Misprediction: BLEM classifies the block as uncompressed
			// (or collided); fetch the remaining half, plus the RA bit
			// on a collision.
			s.Stats.CorrectionReads.Inc()
			s.fetchRest(lineAddr, loc, collision, func(now sim.Time) {
				s.completeAttacheRead(lineAddr, actual, done, now)
			})
		}})
		return
	}
	// Predicted uncompressed: enable both sub-ranks. If the line was
	// actually compressed the extra half was wasted bandwidth but the
	// data is already here (no correction request).
	s.submit(&dram.Request{Loc: loc, SubRanks: dram.SubRankBoth, Done: func(now sim.Time) {
		if !actual && collision {
			// XID says collision: the true data bit lives in the RA.
			s.readRA(lineAddr, func(now sim.Time) {
				s.completeAttacheRead(lineAddr, actual, done, now)
			})
			return
		}
		s.completeAttacheRead(lineAddr, actual, done, now)
	}})
}

// completeAttacheRead finishes an Attaché read: train the predictor with
// the ground truth, notify the oracle checker, and release the caller.
func (s *System) completeAttacheRead(lineAddr uint64, actual bool, done func(sim.Time), now sim.Time) {
	s.copr.Update(lineAddr*config.LineSize, actual)
	if s.checker != nil {
		s.checker.OnReadComplete(lineAddr, actual, now)
	}
	done(now)
}

// fetchRest issues the corrective second-half fetch (and RA read when the
// line collided) after a wrong "compressed" prediction.
func (s *System) fetchRest(lineAddr uint64, loc dram.Location, collision bool, done func(sim.Time)) {
	other := dram.SubRank0
	if subRankFor(loc) == dram.SubRank0 {
		other = dram.SubRank1
	}
	if !collision {
		s.submit(&dram.Request{Loc: loc, SubRanks: other, Done: done})
		return
	}
	// Collision: both the remaining half and the RA bit are needed; the
	// read completes when both arrive.
	remaining := 2
	merge := func(now sim.Time) {
		remaining--
		if remaining == 0 {
			done(now)
		}
	}
	s.submit(&dram.Request{Loc: loc, SubRanks: other, Done: merge})
	s.readRA(lineAddr, merge)
}

func (s *System) readRA(lineAddr uint64, done func(sim.Time)) {
	s.Stats.RAReads.Inc()
	loc := s.mapper.Decode(s.raLineFor(lineAddr))
	s.submit(&dram.Request{Loc: loc, SubRanks: dram.SubRankBoth, Done: done})
}

func (s *System) writeAttache(lineAddr uint64) {
	s.Stats.DataWrites.Inc()
	loc := s.mapper.Decode(lineAddr)
	// The controller just compressed this line, so it knows the outcome:
	// keep the predictor warm with write-path observations too.
	if s.suppressTrain != nil && s.suppressTrain[lineAddr] {
		// Mutation-test injection (InjectSuppressTrain): drop this one
		// training call so the oracle can prove it notices the drift.
		delete(s.suppressTrain, lineAddr)
	} else {
		defer s.copr.Train(lineAddr*config.LineSize, s.compressed(lineAddr))
	}
	if s.checker != nil {
		s.checker.OnWrite(lineAddr, s.compressed(lineAddr), s.eng.Now())
	}
	if s.compressed(lineAddr) {
		s.submit(&dram.Request{Write: true, Loc: loc, SubRanks: subRankFor(loc)})
		return
	}
	s.submit(&dram.Request{Write: true, Loc: loc, SubRanks: dram.SubRankBoth})
	if s.collides(lineAddr) {
		// Park the displaced bit: a posted read-modify-write of the RA
		// block, modeled as one write request.
		s.Stats.RAWrites.Inc()
		raLoc := s.mapper.Decode(s.raLineFor(lineAddr))
		s.submit(&dram.Request{Write: true, Loc: raLoc, SubRanks: dram.SubRankBoth})
	}
}

// --- Metadata-Cache system ---------------------------------------------

func (s *System) readMDCache(lineAddr uint64, done func(sim.Time)) {
	s.eng.ScheduleAfter(s.cfg.MDCache.Latency, func(sim.Time) {
		s.issueMDCacheRead(lineAddr, done)
	})
}

func (s *System) issueMDCacheRead(lineAddr uint64, done func(sim.Time)) {
	loc := s.mapper.Decode(lineAddr)
	actual := s.compressed(lineAddr)
	s.Stats.CompressedReads.Observe(actual)
	key := s.metaKeyFor(lineAddr)

	res := s.mdc.Access(key, false)
	if res.EvictedDirty {
		s.writeMeta(res.VictimKey)
	}
	if res.Hit {
		// The cached metadata says which sub-ranks to enable: compressed
		// lines ride a single sub-rank.
		s.Stats.DataReads.Inc()
		mask := dram.SubRankBoth
		if actual {
			mask = subRankFor(loc)
		}
		s.submit(&dram.Request{Loc: loc, SubRanks: mask, Done: done})
		return
	}
	// Miss: without metadata the controller cannot exploit sub-ranking
	// for this access. It fetches the full 64-byte line conservatively
	// and the metadata block in parallel (two consecutive requests to
	// the same row, Fig. 7); the read completes when both have arrived,
	// since the decompressor needs the metadata to interpret the data.
	s.Stats.MetaReads.Inc()
	s.Stats.DataReads.Inc()
	remaining := 2
	merge := func(now sim.Time) {
		remaining--
		if remaining == 0 {
			done(now)
		}
	}
	s.submit(&dram.Request{Loc: loc, SubRanks: dram.SubRankBoth, Done: merge})
	s.submit(&dram.Request{Loc: s.metaLocFor(key), SubRanks: dram.SubRankBoth, Done: merge})
}

func (s *System) writeMDCache(lineAddr uint64) {
	loc := s.mapper.Decode(lineAddr)
	actual := s.compressed(lineAddr)
	s.Stats.DataWrites.Inc()
	mask := dram.SubRankBoth
	if actual {
		mask = subRankFor(loc)
	}
	s.submit(&dram.Request{Write: true, Loc: loc, SubRanks: mask})

	// The write updates the line's metadata: a write access to the
	// metadata cache. A miss installs the metadata block first.
	key := s.metaKeyFor(lineAddr)
	res := s.mdc.Access(key, true)
	if res.EvictedDirty {
		s.writeMeta(res.VictimKey)
	}
	if !res.Hit {
		s.Stats.MetaReads.Inc()
		s.submit(&dram.Request{Loc: s.metaLocFor(key), SubRanks: dram.SubRankBoth})
	}
}

func (s *System) writeMeta(key uint64) {
	s.Stats.MetaWrites.Inc()
	s.submit(&dram.Request{Write: true, Loc: s.metaLocFor(key), SubRanks: dram.SubRankBoth})
}
