package memctrl

// Fault-injection hooks for the mutation tests that prove the check layer
// has teeth (ISSUE: flip one BLEM header bit; suppress one COPR training
// call — the oracle must catch both). They exist only for tests; nothing
// in the simulator calls them.

// InjectHeaderBitFlip flips one bit of the differential oracle's stored
// Attaché image of lineAddr (block 0 carries the BLEM header in its first
// two bytes). The next read of the line must then either misclassify or
// return bytes that differ from the ideal flow, which the oracle reports
// with the read's (address, cycle). Reports false when the system has no
// oracle or the line has not been materialized yet.
func (s *System) InjectHeaderBitFlip(lineAddr uint64, block, bit int) bool {
	if s.checker == nil {
		return false
	}
	return s.checker.CorruptStoredBit(lineAddr, block, bit)
}

// InjectSuppressTrain makes the Attaché write path skip its COPR training
// call on the next write to lineAddr, simulating a lost training event.
// The oracle's shadow predictor keeps the specified training sequence, so
// the two predictors drift and a later prediction comparison fails.
func (s *System) InjectSuppressTrain(lineAddr uint64) {
	if s.suppressTrain == nil {
		s.suppressTrain = make(map[uint64]bool)
	}
	s.suppressTrain[lineAddr] = true
}
