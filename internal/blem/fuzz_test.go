package blem

import (
	"bytes"
	"testing"
)

// FuzzBLEMHeaderRoundTrip asserts the blended-header invariants over
// arbitrary line contents, addresses, CID widths, and CID draws:
//
//   - an uncompressed store classifies back as uncompressed and keeps
//     the line verbatim, or classifies as a collision and reconstructs
//     the original line exactly via the Replacement Area;
//   - a compressed store classifies as compressed and round-trips both
//     the packed payload and the Table I information bits.
func FuzzBLEMHeaderRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(1), 15, make([]byte, LineSize))
	f.Add(uint64(1<<30), int64(99), 13, bytes.Repeat([]byte{0xFF}, LineSize))
	line := make([]byte, LineSize)
	for i := range line {
		line[i] = byte(i * 7)
	}
	f.Add(uint64(123456), int64(-5), 1, line)
	f.Fuzz(func(t *testing.T, addr uint64, seed int64, cidBits int, data []byte) {
		if len(data) != LineSize {
			return
		}
		if cidBits < 1 || cidBits > 15 {
			return
		}
		e := NewEngine(cidBits, seed)

		// Uncompressed path, with Replacement-Area parking on collision.
		stored, collision := e.StoreUncompressed(addr, data)
		cls := e.Classify(stored[:SubRankSize])
		if collision {
			if cls != ClassCollision {
				t.Fatalf("collided store classified %v", cls)
			}
			if e.ReplacementArea().Len() != 1 {
				t.Fatalf("RA holds %d bits after one collision", e.ReplacementArea().Len())
			}
			restored := e.LoadCollided(addr, stored[:])
			if !bytes.Equal(restored[:], data) {
				t.Fatal("collided line did not reconstruct")
			}
		} else {
			if cls != ClassUncompressed {
				t.Fatalf("plain store classified %v", cls)
			}
			if !bytes.Equal(stored[:], data) {
				t.Fatal("uncompressed store must be verbatim")
			}
			if e.ReplacementArea().Len() != 0 {
				t.Fatal("RA touched without a collision")
			}
		}

		// Compressed path: header + payload + info bits round-trip.
		payload := data
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		info := uint8(addr) & (1<<uint(e.InfoBits()) - 1)
		block, err := e.PackCompressedInfo(payload, info)
		if err != nil {
			t.Fatalf("pack: %v", err)
		}
		if got := e.Classify(block[:]); got != ClassCompressed {
			t.Fatalf("compressed block classified %v", got)
		}
		if got := PayloadOf(block[:])[:len(payload)]; !bytes.Equal(got, payload) {
			t.Fatal("payload did not round-trip")
		}
		if got := e.InfoOf(block[:]); got != info {
			t.Fatalf("info bits %d round-tripped as %d", info, got)
		}
	})
}

// FuzzPackCompressedBounds asserts oversized payloads and info values are
// rejected with errors, never mis-stored.
func FuzzPackCompressedBounds(f *testing.F) {
	f.Add(31, uint8(0))
	f.Add(30, uint8(255))
	f.Fuzz(func(t *testing.T, n int, info uint8) {
		if n < 0 || n > 4*LineSize {
			return
		}
		e := NewEngine(14, 7)
		_, err := e.PackCompressedInfo(make([]byte, n), info)
		wantErr := n > MaxPayload || int(info) >= 1<<uint(e.InfoBits())
		if (err != nil) != wantErr {
			t.Fatalf("payload=%d info=%d: err=%v, want error=%v", n, info, err, wantErr)
		}
	})
}
