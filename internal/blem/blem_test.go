package blem

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEngineCIDWidth(t *testing.T) {
	for bits := 1; bits <= 15; bits++ {
		e := NewEngine(bits, 42)
		if e.CIDBits() != bits {
			t.Fatalf("CIDBits = %d, want %d", e.CIDBits(), bits)
		}
		if e.CID() >= 1<<uint(bits) {
			t.Fatalf("CID %#x wider than %d bits", e.CID(), bits)
		}
	}
}

func TestNewEnginePanicsOnBadWidth(t *testing.T) {
	for _, bits := range []int{0, 16, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEngine(%d) did not panic", bits)
				}
			}()
			NewEngine(bits, 1)
		}()
	}
}

func TestPackCompressedRoundTrip(t *testing.T) {
	e := NewEngine(15, 7)
	payload := []byte{3, 1, 4, 1, 5, 9, 2, 6}
	block, err := e.PackCompressed(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Classify(block[:]); got != ClassCompressed {
		t.Fatalf("classify = %v, want compressed", got)
	}
	if !bytes.Equal(PayloadOf(block[:])[:len(payload)], payload) {
		t.Fatal("payload not recovered")
	}
}

func TestPackCompressedRejectsOversize(t *testing.T) {
	e := NewEngine(15, 7)
	if _, err := e.PackCompressed(make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("expected oversize error")
	}
}

func TestStoreUncompressedNoCollision(t *testing.T) {
	e := NewEngine(15, 7)
	// Build a line whose top 15 bits deliberately differ from the CID.
	line := make([]byte, LineSize)
	h := (e.CID() ^ 0x1) << 1 // flip a CID bit
	line[0], line[1] = byte(h>>8), byte(h)
	stored, collision := e.StoreUncompressed(100, line)
	if collision {
		t.Fatal("unexpected collision")
	}
	if !bytes.Equal(stored[:], line) {
		t.Fatal("non-colliding line must be stored verbatim")
	}
	if got := e.Classify(stored[:]); got != ClassUncompressed {
		t.Fatalf("classify = %v, want uncompressed", got)
	}
}

// buildCollidingLine returns a 64-byte line whose top CIDBits bits equal
// the CID and whose XID position holds the given bit.
func buildCollidingLine(e *Engine, xid bool, rng *rand.Rand) []byte {
	line := make([]byte, LineSize)
	rng.Read(line)
	h := e.CID() << uint(16-e.CIDBits())
	keepMask := uint16(1<<uint(16-e.CIDBits()-1)) - 1 // bits below XID
	orig := uint16(line[0])<<8 | uint16(line[1])
	h |= orig & keepMask
	if xid {
		h |= 1 << uint(15-e.CIDBits())
	}
	line[0], line[1] = byte(h>>8), byte(h)
	return line
}

func TestStoreUncompressedCollisionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, xidWas := range []bool{false, true} {
		e := NewEngine(15, 7)
		line := buildCollidingLine(e, xidWas, rng)
		stored, collision := e.StoreUncompressed(200, line)
		if !collision {
			t.Fatal("expected collision")
		}
		if got := e.Classify(stored[:]); got != ClassCollision {
			t.Fatalf("classify = %v, want collision", got)
		}
		restored := e.LoadCollided(200, stored[:])
		if !bytes.Equal(restored[:], line) {
			t.Fatalf("collided line (xid bit was %v) not restored", xidWas)
		}
		if e.Stats.RAWrites.Value() != 1 || e.Stats.RAReads.Value() != 1 {
			t.Fatal("RA counters not charged")
		}
	}
}

func TestCollisionDistinctAddressesIndependent(t *testing.T) {
	e := NewEngine(15, 9)
	rng := rand.New(rand.NewSource(5))
	lineA := buildCollidingLine(e, true, rng)
	lineB := buildCollidingLine(e, false, rng)
	storedA, _ := e.StoreUncompressed(1, lineA)
	storedB, _ := e.StoreUncompressed(2, lineB)
	if got := e.LoadCollided(1, storedA[:]); !bytes.Equal(got[:], lineA) {
		t.Fatal("line A corrupted")
	}
	if got := e.LoadCollided(2, storedB[:]); !bytes.Equal(got[:], lineB) {
		t.Fatal("line B corrupted")
	}
	if e.ReplacementArea().Len() != 2 {
		t.Fatalf("RA entries = %d, want 2", e.ReplacementArea().Len())
	}
}

func TestCompressedNeverMisclassified(t *testing.T) {
	// A compressed block always classifies as compressed: the engine
	// writes CID + XID=0 itself.
	e := NewEngine(15, 11)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		payload := make([]byte, rng.Intn(MaxPayload+1))
		rng.Read(payload)
		block, err := e.PackCompressed(payload)
		if err != nil {
			t.Fatal(err)
		}
		if e.Classify(block[:]) != ClassCompressed {
			t.Fatal("compressed block misclassified")
		}
	}
}

func TestCollisionRateMatchesAnalytic(t *testing.T) {
	// Random (scrambled-looking) uncompressed lines must collide with
	// probability ~2^-cidBits. Use an 8-bit CID so the Monte-Carlo
	// converges quickly; the analytic formula covers the 15-bit case.
	e := NewEngine(8, 1234)
	rng := rand.New(rand.NewSource(99))
	const trials = 200000
	collisions := 0
	line := make([]byte, LineSize)
	for i := 0; i < trials; i++ {
		rng.Read(line)
		_, c := e.StoreUncompressed(uint64(i), line)
		if c {
			collisions++
		}
	}
	want := float64(trials) * CollisionProbability(8) // ~781
	got := float64(collisions)
	if math.Abs(got-want) > want*0.15 {
		t.Fatalf("collisions = %d, want ~%.0f", collisions, want)
	}
}

func TestCollisionProbabilityTable(t *testing.T) {
	// Table I of the paper.
	cases := map[int]float64{15: 0.0000305, 14: 0.000061, 13: 0.000122}
	for bits, want := range cases {
		got := CollisionProbability(bits)
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("P(collision | %d bits) = %v, want %v", bits, got, want)
		}
	}
}

func TestReplacementAreaDefaultZero(t *testing.T) {
	ra := NewReplacementArea()
	if ra.Load(12345) {
		t.Fatal("untouched RA bit should read 0")
	}
}

func TestClassifyShortBlockPanics(t *testing.T) {
	e := NewEngine(15, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Classify([]byte{1})
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassUncompressed: "uncompressed",
		ClassCompressed:   "compressed",
		ClassCollision:    "collision",
		Class(9):          "Class(9)",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", uint8(c), c.String())
		}
	}
}

// Property: for every CID width and any raw line, store-then-load restores
// the line exactly, whether or not it collides.
func TestUncompressedRoundTripProperty(t *testing.T) {
	f := func(seed int64, width uint8, raw [LineSize]byte) bool {
		bits := int(width%15) + 1
		e := NewEngine(bits, seed)
		line := raw[:]
		stored, collision := e.StoreUncompressed(77, line)
		switch e.Classify(stored[:]) {
		case ClassUncompressed:
			return !collision && bytes.Equal(stored[:], line)
		case ClassCollision:
			restored := e.LoadCollided(77, stored[:])
			return collision && bytes.Equal(restored[:], line)
		default:
			// An uncompressed store can never look compressed: a
			// colliding store always sets XID=1.
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: forced-collision lines round-trip for every CID width.
func TestForcedCollisionRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for bits := 1; bits <= 15; bits++ {
		e := NewEngine(bits, int64(bits)*31)
		for trial := 0; trial < 200; trial++ {
			line := buildCollidingLine(e, trial%2 == 0, rng)
			stored, collision := e.StoreUncompressed(uint64(trial), line)
			if !collision {
				t.Fatalf("bits=%d: expected collision", bits)
			}
			restored := e.LoadCollided(uint64(trial), stored[:])
			if !bytes.Equal(restored[:], line) {
				t.Fatalf("bits=%d trial=%d: round trip failed", bits, trial)
			}
		}
	}
}

func TestInfoBitsRoundTrip(t *testing.T) {
	// Table I: CID 15 -> 0 info bits, 14 -> 1, 13 -> 2.
	for bits, want := range map[int]int{15: 0, 14: 1, 13: 2, 8: 7} {
		e := NewEngine(bits, 5)
		if e.InfoBits() != want {
			t.Fatalf("CID %d: info bits = %d, want %d", bits, e.InfoBits(), want)
		}
		for info := uint8(0); int(info) < 1<<uint(want); info++ {
			block, err := e.PackCompressedInfo([]byte{1, 2, 3}, info)
			if err != nil {
				t.Fatal(err)
			}
			if e.Classify(block[:]) != ClassCompressed {
				t.Fatalf("CID %d info %d: misclassified", bits, info)
			}
			if got := e.InfoOf(block[:]); got != info {
				t.Fatalf("CID %d: info = %d, want %d", bits, got, info)
			}
		}
	}
}

func TestInfoBitsOverflowRejected(t *testing.T) {
	e := NewEngine(14, 5) // 1 spare bit
	if _, err := e.PackCompressedInfo([]byte{1}, 2); err == nil {
		t.Fatal("expected info overflow error")
	}
	e15 := NewEngine(15, 5) // 0 spare bits
	if _, err := e15.PackCompressedInfo([]byte{1}, 1); err == nil {
		t.Fatal("expected info overflow error at 15-bit CID")
	}
}
