// Package blem implements the Blended Metadata Engine (paper §IV-A/B),
// the first component of the Attaché framework. BLEM stores a line's
// compression metadata inside the line itself by interpreting its first
// two bytes as a Metadata-Header:
//
//	bit 0..CIDBits-1 : Compression ID (CID) — random boot-time constant
//	bit CIDBits      : Exclusive ID (XID) — marks CID collisions
//	remaining bits   : optional information bits (Table I)
//
// Compressed lines are stored as CID ‖ XID=0 ‖ payload in one 32-byte
// sub-rank block. Uncompressed lines are stored verbatim unless their
// (scrambled) leading bits collide with the CID, in which case the XID
// bit position is overwritten with 1 and the displaced data bit parks in
// the direct-mapped Replacement Area (1 bit per line, 1/512 of capacity).
package blem

import (
	"fmt"
	"math/rand"

	"attache/internal/stats"
)

// Geometry shared with the rest of the simulator.
const (
	LineSize    = 64
	SubRankSize = 32
	HeaderBytes = 2
	// MaxPayload is the largest packed payload that fits beside the
	// header in one sub-rank: the paper's 30-byte target.
	MaxPayload = SubRankSize - HeaderBytes
)

// Class is BLEM's verdict about a stored line, decided from the first
// sub-rank block alone.
type Class uint8

const (
	// ClassUncompressed: leading bits do not match the CID; the line is
	// stored raw across both sub-ranks.
	ClassUncompressed Class = iota
	// ClassCompressed: CID matches and XID is 0; bytes 2..31 of the block
	// hold the packed compressed payload.
	ClassCompressed
	// ClassCollision: CID matches and XID is 1; the line is raw data that
	// happened to collide, and its true bit at the XID position lives in
	// the Replacement Area.
	ClassCollision
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassUncompressed:
		return "uncompressed"
	case ClassCompressed:
		return "compressed"
	case ClassCollision:
		return "collision"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Stats counts BLEM activity; the Replacement Area counters are the
// paper's "0.003% additional accesses" claim made measurable.
type Stats struct {
	Writes           stats.Counter // lines written through BLEM
	CompressedWrites stats.Counter
	Collisions       stats.Counter // collision inserts on write
	RAWrites         stats.Counter
	Reads            stats.Counter
	CollisionReads   stats.Counter // reads that needed the RA
	RAReads          stats.Counter
}

// ReplacementArea stores the data bits displaced by XID inserts. Every
// line in the memory system indexes one bit, direct-mapped (§IV-A7); we
// materialize only the touched entries.
type ReplacementArea struct {
	bits map[uint64]bool
}

// NewReplacementArea returns an empty replacement area.
func NewReplacementArea() *ReplacementArea {
	return &ReplacementArea{bits: make(map[uint64]bool)}
}

// Store parks the displaced bit for a line.
func (ra *ReplacementArea) Store(lineAddr uint64, bit bool) { ra.bits[lineAddr] = bit }

// Load retrieves the displaced bit for a line. Loading an address that was
// never stored returns false — matching hardware, where the direct-mapped
// bit exists (zero-initialized) for every line.
func (ra *ReplacementArea) Load(lineAddr uint64) bool { return ra.bits[lineAddr] }

// Len reports how many entries have been touched.
func (ra *ReplacementArea) Len() int { return len(ra.bits) }

// Engine is the Blended Metadata Engine for one memory controller.
type Engine struct {
	cidBits int
	cid     uint16 // low cidBits bits hold the ID
	ra      *ReplacementArea
	Stats   Stats
}

// NewEngine creates a BLEM engine with a CID of the given width drawn from
// seed, standing in for the boot-time random choice. CID widths from 1 to
// 15 bits are supported (Table I trades width for information bits).
func NewEngine(cidBits int, seed int64) *Engine {
	if cidBits < 1 || cidBits > 15 {
		panic(fmt.Sprintf("blem: CID width %d out of range [1,15]", cidBits))
	}
	rng := rand.New(rand.NewSource(seed))
	return &Engine{
		cidBits: cidBits,
		cid:     uint16(rng.Intn(1 << uint(cidBits))),
		ra:      NewReplacementArea(),
	}
}

// CIDBits reports the configured CID width.
func (e *Engine) CIDBits() int { return e.cidBits }

// CID reports the engine's Compression ID value (low CIDBits bits).
func (e *Engine) CID() uint16 { return e.cid }

// ReplacementArea exposes the engine's RA, mainly for tests and capacity
// accounting.
func (e *Engine) ReplacementArea() *ReplacementArea { return e.ra }

// CollisionProbability reports the analytic per-access probability that an
// uncompressed (scrambled) line collides with a CID of the given width:
// 2^-bits (Fig. 8 and Table I).
func CollisionProbability(bits int) float64 {
	return 1 / float64(uint64(1)<<uint(bits))
}

// header16 reads the first two stored bytes as a big-endian 16-bit value.
func header16(block []byte) uint16 {
	return uint16(block[0])<<8 | uint16(block[1])
}

// topBits extracts the leading cidBits bits of a block.
func (e *Engine) topBits(block []byte) uint16 {
	return header16(block) >> uint(16-e.cidBits)
}

// xidBit reports the XID bit (bit position cidBits, MSB-first).
func (e *Engine) xidBit(block []byte) bool {
	return header16(block)&(1<<uint(15-e.cidBits)) != 0
}

// setXID forces the XID bit of block to 1 and reports the displaced value.
func (e *Engine) setXID(block []byte) (displaced bool) {
	pos := e.cidBits // bit index from MSB of byte 0
	mask := byte(1) << uint(7-pos%8)
	displaced = block[pos/8]&mask != 0
	block[pos/8] |= mask
	return displaced
}

// restoreXID writes the displaced bit back into the XID position.
func (e *Engine) restoreXID(block []byte, bit bool) {
	pos := e.cidBits
	mask := byte(1) << uint(7-pos%8)
	if bit {
		block[pos/8] |= mask
	} else {
		block[pos/8] &^= mask
	}
}

// InfoBits reports how many spare Metadata-Header bits a CID of this
// width leaves for extra information (Table I: a 14-bit CID frees 1 bit,
// 13 bits free 2, ...). The header is CID + XID + info = 16 bits.
func (e *Engine) InfoBits() int { return 15 - e.cidBits }

// PackCompressed builds the 32-byte sub-rank block for a compressed line:
// CID, XID=0, packed payload, zero fill. The payload must not exceed
// MaxPayload.
func (e *Engine) PackCompressed(packedPayload []byte) ([SubRankSize]byte, error) {
	return e.PackCompressedInfo(packedPayload, 0)
}

// PackCompressedInfo is PackCompressed with the Table I extension: info
// is stored in the header's spare bits (the low 15-CIDBits bits of the
// second header byte), e.g. to name the compression algorithm (§IV-A5).
func (e *Engine) PackCompressedInfo(packedPayload []byte, info uint8) ([SubRankSize]byte, error) {
	var block [SubRankSize]byte
	if len(packedPayload) > MaxPayload {
		return block, fmt.Errorf("blem: payload %d bytes exceeds %d", len(packedPayload), MaxPayload)
	}
	if int(info) >= 1<<uint(e.InfoBits()) {
		return block, fmt.Errorf("blem: info value %d does not fit %d spare bits", info, e.InfoBits())
	}
	h := e.cid << uint(16-e.cidBits) // CID at the top, XID (next bit) zero
	h |= uint16(info)                // spare bits below XID
	block[0] = byte(h >> 8)
	block[1] = byte(h)
	copy(block[HeaderBytes:], packedPayload)
	e.Stats.Writes.Inc()
	e.Stats.CompressedWrites.Inc()
	return block, nil
}

// InfoOf extracts the information bits from a compressed block's header.
func (e *Engine) InfoOf(block []byte) uint8 {
	if len(block) < HeaderBytes {
		panic("blem: InfoOf needs at least the 2-byte header")
	}
	mask := uint16(1)<<uint(e.InfoBits()) - 1
	return uint8(header16(block) & mask)
}

// PayloadOf returns the packed payload region of a compressed block.
func PayloadOf(block []byte) []byte { return block[HeaderBytes:SubRankSize] }

// StoreUncompressed prepares the 64-byte stored image of an uncompressed
// line (already scrambled by the caller). On a CID collision it inserts
// XID=1 and parks the displaced bit in the Replacement Area, charging the
// RA write counter. It reports whether a collision occurred.
func (e *Engine) StoreUncompressed(lineAddr uint64, line []byte) (stored [LineSize]byte, collision bool) {
	if len(line) != LineSize {
		panic(fmt.Sprintf("blem: StoreUncompressed needs a %d-byte line, got %d", LineSize, len(line)))
	}
	copy(stored[:], line)
	e.Stats.Writes.Inc()
	if e.topBits(stored[:]) != e.cid {
		return stored, false
	}
	displaced := e.setXID(stored[:])
	e.ra.Store(lineAddr, displaced)
	e.Stats.Collisions.Inc()
	e.Stats.RAWrites.Inc()
	return stored, true
}

// Classify inspects the first sub-rank block of a stored line and decides
// how to interpret it. This is the read-path decision of Fig. 9(d-f).
func (e *Engine) Classify(firstBlock []byte) Class {
	if len(firstBlock) < HeaderBytes {
		panic("blem: Classify needs at least the 2-byte header")
	}
	e.Stats.Reads.Inc()
	if e.topBits(firstBlock) != e.cid {
		return ClassUncompressed
	}
	if e.xidBit(firstBlock) {
		e.Stats.CollisionReads.Inc()
		return ClassCollision
	}
	return ClassCompressed
}

// LoadCollided reconstructs the original raw line of a collided store:
// it fetches the displaced bit from the Replacement Area (charging the RA
// read counter) and writes it back over the XID position.
func (e *Engine) LoadCollided(lineAddr uint64, stored []byte) [LineSize]byte {
	if len(stored) != LineSize {
		panic(fmt.Sprintf("blem: LoadCollided needs a %d-byte stored image, got %d", LineSize, len(stored)))
	}
	var line [LineSize]byte
	copy(line[:], stored)
	e.Stats.RAReads.Inc()
	e.restoreXID(line[:], e.ra.Load(lineAddr))
	return line
}
