package blem

import "fmt"

// State is the serializable image of a BLEM engine: the CID value, the
// touched Replacement Area entries, and the stat counters. The snapv1
// codec persists it so a restored engine classifies lines and counts
// RA traffic exactly like the original.
//
// The CID is recorded even though NewEngine derives it from the seed:
// a snapshot must stay authoritative if the derivation ever changes.
type State struct {
	CID uint16
	RA  map[uint64]bool
	// Stats holds the seven counters in declaration order: Writes,
	// CompressedWrites, Collisions, RAWrites, Reads, CollisionReads,
	// RAReads.
	Stats [7]uint64
}

// ExportState captures the engine's current state. The RA map is copied,
// so the snapshot stays stable while the engine keeps serving.
func (e *Engine) ExportState() State {
	ra := make(map[uint64]bool, len(e.ra.bits))
	for k, v := range e.ra.bits {
		ra[k] = v
	}
	return State{
		CID: e.cid,
		RA:  ra,
		Stats: [7]uint64{
			e.Stats.Writes.Value(),
			e.Stats.CompressedWrites.Value(),
			e.Stats.Collisions.Value(),
			e.Stats.RAWrites.Value(),
			e.Stats.Reads.Value(),
			e.Stats.CollisionReads.Value(),
			e.Stats.RAReads.Value(),
		},
	}
}

// RestoreState overwrites the engine's CID, Replacement Area, and
// counters from a snapshot. The CID must fit the engine's configured
// width — a wider value means the snapshot came from an incompatible
// configuration.
func (e *Engine) RestoreState(st State) error {
	if st.CID >= 1<<uint(e.cidBits) {
		return fmt.Errorf("blem: snapshot CID %#x does not fit %d bits", st.CID, e.cidBits)
	}
	e.cid = st.CID
	bits := make(map[uint64]bool, len(st.RA))
	for k, v := range st.RA {
		bits[k] = v
	}
	e.ra = &ReplacementArea{bits: bits}
	e.Stats.Writes.Restore(st.Stats[0])
	e.Stats.CompressedWrites.Restore(st.Stats[1])
	e.Stats.Collisions.Restore(st.Stats[2])
	e.Stats.RAWrites.Restore(st.Stats[3])
	e.Stats.Reads.Restore(st.Stats[4])
	e.Stats.CollisionReads.Restore(st.Stats[5])
	e.Stats.RAReads.Restore(st.Stats[6])
	return nil
}
