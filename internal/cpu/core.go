// Package cpu models the out-of-order cores of Table II with an
// event-driven interval technique: a core advances through its
// instruction stream at the issue width, issues memory references as it
// reaches them, and stalls when the reorder buffer fills behind an
// outstanding load, when it runs out of MSHRs, or when a dependent
// (pointer-chasing) load must wait for the previous one. This captures
// the two properties the paper's results hinge on — memory-level
// parallelism and sensitivity to memory latency/bandwidth — at a tiny
// fraction of the cost of per-instruction simulation.
package cpu

import (
	"math"

	"attache/internal/check"
	"attache/internal/sim"
	"attache/internal/trace"
)

// Memory is the first level below the core (the shared LLC).
type Memory interface {
	Read(lineAddr uint64, done func(now sim.Time))
	Write(lineAddr uint64)
}

// Config holds the core parameters.
type Config struct {
	IssueWidth int
	ROBSize    int64
	MSHRs      int
	// Audit, when set, enables the core's occupancy invariants: the
	// outstanding-load count must never exceed the MSHRs and the issue
	// window must stay within the ROB (config.CheckInvariants and
	// above). Auditing observes; it never changes issue decisions.
	Audit *check.Recorder
}

// Stats counts core activity.
type Stats struct {
	Instructions int64
	Loads        int64
	Stores       int64
	StallCycles  int64 // cycles spent fully blocked
}

type pendingLoad struct {
	instrPos int64
	done     bool
}

// Core replays one trace generator's stream against a memory hierarchy.
type Core struct {
	eng      *sim.Engine
	id       int
	cfg      Config
	gen      trace.Source
	mem      Memory
	target   int64 // memory references to issue
	onFinish func(now sim.Time)

	pos        int64 // instructions issued so far
	issued     int64 // memory references issued
	cur        trace.Access
	nextMemAt  int64
	pending    []pendingLoad
	lastUpdate sim.Time
	blockedAt  sim.Time // time the core became fully blocked, -1 if running
	finished   bool
	finishTime sim.Time

	wakePending bool
	wakeAt      sim.Time
	tickFn      sim.Event // cached method value: avoids a closure per wake

	Stats Stats
}

// NewCore builds a core that will issue target memory references from gen.
func NewCore(eng *sim.Engine, id int, cfg Config, gen trace.Source, target int64, mem Memory, onFinish func(sim.Time)) *Core {
	if cfg.IssueWidth <= 0 || cfg.ROBSize <= 0 || cfg.MSHRs <= 0 {
		panic("cpu: config values must be positive")
	}
	if target <= 0 {
		panic("cpu: target must be positive")
	}
	c := &Core{
		eng: eng, id: id, cfg: cfg, gen: gen, mem: mem,
		target: target, onFinish: onFinish, blockedAt: -1,
	}
	c.tickFn = c.tick
	return c
}

// Start schedules the core's first activity at time zero.
func (c *Core) Start() { c.StartAt(0) }

// StartAt schedules the core's first activity at the given time. The
// harness staggers rate-mode cores by a few cycles so identical traces do
// not run in lockstep and phase-lock against the write-drain machinery.
func (c *Core) StartAt(at sim.Time) {
	c.cur = c.gen.Next()
	c.nextMemAt = c.cur.Gap
	c.lastUpdate = at
	c.wake(at)
}

// Finished reports completion and the finish time.
func (c *Core) Finished() (bool, sim.Time) { return c.finished, c.finishTime }

// IPC reports retired instructions per cycle at finish time.
func (c *Core) IPC() float64 {
	if c.finishTime == 0 {
		return 0
	}
	return float64(c.Stats.Instructions) / float64(c.finishTime)
}

func (c *Core) wake(at sim.Time) {
	if c.wakePending && c.wakeAt <= at {
		return
	}
	c.wakePending = true
	c.wakeAt = at
	c.eng.Schedule(at, c.tickFn)
}

// robLimit reports the highest instruction position the core may issue:
// the oldest incomplete load plus the ROB window.
func (c *Core) robLimit() int64 {
	if len(c.pending) == 0 {
		return math.MaxInt64
	}
	return c.pending[0].instrPos + c.cfg.ROBSize
}

func (c *Core) tick(now sim.Time) {
	if c.finished {
		return
	}
	if c.wakePending && now < c.wakeAt {
		return // superseded stale wake
	}
	c.wakePending = false

	if c.blockedAt >= 0 {
		c.Stats.StallCycles += now - c.blockedAt
		c.blockedAt = -1
		c.lastUpdate = now
	}
	avail := (now - c.lastUpdate) * int64(c.cfg.IssueWidth)
	c.lastUpdate = now

	for {
		if c.issued >= c.target {
			if len(c.pending) == 0 {
				c.finished = true
				c.finishTime = now
				c.Stats.Instructions = c.pos
				if c.onFinish != nil {
					c.onFinish(now)
				}
			}
			// else: wait for outstanding loads; completions wake us.
			return
		}
		limit := c.robLimit()
		stopAt := c.nextMemAt
		if limit < stopAt {
			stopAt = limit
		}
		if c.pos < stopAt {
			adv := stopAt - c.pos
			if adv > avail {
				adv = avail
			}
			c.pos += adv
			avail -= adv
			if c.pos < stopAt {
				// Out of issue slots this instant: wake when the
				// remaining instructions will have issued.
				need := stopAt - c.pos
				w := int64(c.cfg.IssueWidth)
				c.wake(now + (need+w-1)/w)
				return
			}
		}
		if c.pos >= limit && limit <= c.nextMemAt {
			c.block(now) // ROB full behind oldest load
			return
		}
		// pos reached the next memory reference: try to issue it.
		if c.cur.Dependent && len(c.pending) > 0 {
			c.block(now)
			return
		}
		if !c.cur.Store && len(c.pending) >= c.cfg.MSHRs {
			c.block(now)
			return
		}
		c.issueCurrent(now)
	}
}

func (c *Core) block(now sim.Time) {
	if c.blockedAt < 0 {
		c.blockedAt = now
	}
}

func (c *Core) issueCurrent(now sim.Time) {
	addr := c.cur.LineAddr
	if c.cur.Store {
		c.Stats.Stores++
		c.mem.Write(addr)
	} else {
		c.Stats.Loads++
		if c.cfg.Audit != nil {
			if len(c.pending) >= c.cfg.MSHRs {
				c.cfg.Audit.Failf(addr, now, "core %d MSHR overflow: %d loads outstanding with %d MSHRs",
					c.id, len(c.pending)+1, c.cfg.MSHRs)
			}
			if len(c.pending) > 0 && c.pos-c.pending[0].instrPos > c.cfg.ROBSize {
				c.cfg.Audit.Failf(addr, now, "core %d issued past the ROB window: pos=%d oldest=%d size=%d",
					c.id, c.pos, c.pending[0].instrPos, c.cfg.ROBSize)
			}
		}
		c.pending = append(c.pending, pendingLoad{instrPos: c.pos})
		idx := len(c.pending) - 1
		pos := c.pending[idx].instrPos
		c.mem.Read(addr, func(done sim.Time) { c.complete(pos, done) })
	}
	c.issued++
	c.cur = c.gen.Next()
	c.nextMemAt = c.pos + c.cur.Gap
}

// complete marks the load issued at instrPos done, retires the completed
// prefix (in-order retirement), and wakes the core.
func (c *Core) complete(instrPos int64, now sim.Time) {
	for i := range c.pending {
		if c.pending[i].instrPos == instrPos && !c.pending[i].done {
			c.pending[i].done = true
			break
		}
	}
	n := 0
	for n < len(c.pending) && c.pending[n].done {
		n++
	}
	if n > 0 {
		c.pending = c.pending[n:]
	}
	c.tick(now)
}
