package cpu

import (
	"strings"
	"testing"

	"attache/internal/sim"
	"attache/internal/trace"
)

// fixedMem completes every read after a fixed latency and counts traffic.
type fixedMem struct {
	eng         *sim.Engine
	latency     sim.Time
	reads       int
	writes      int
	inFlight    int
	maxInFlight int
}

func (m *fixedMem) Read(addr uint64, done func(sim.Time)) {
	m.reads++
	m.inFlight++
	if m.inFlight > m.maxInFlight {
		m.maxInFlight = m.inFlight
	}
	m.eng.ScheduleAfter(m.latency, func(now sim.Time) {
		m.inFlight--
		done(now)
	})
}

func (m *fixedMem) Write(addr uint64) { m.writes++ }

func coreProfile(p trace.Pattern, gap int64, storeFrac float64) trace.Profile {
	return trace.Profile{
		Name: "t", Pattern: p, Stride: 2, FootprintBytes: 1 << 22,
		CompressibleFrac: 0.5, PageHomogeneity: 0.5,
		StoreFrac: storeFrac, MeanGap: gap, DataSeed: 1,
	}
}

func defaultCfg() Config { return Config{IssueWidth: 4, ROBSize: 192, MSHRs: 16} }

func runCore(t *testing.T, prof trace.Profile, cfg Config, latency sim.Time, target int64) (*Core, *fixedMem, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	mem := &fixedMem{eng: eng, latency: latency}
	gen := trace.NewGenerator(prof, 11, 0)
	var finish sim.Time = -1
	c := NewCore(eng, 0, cfg, gen, target, mem, func(now sim.Time) { finish = now })
	c.Start()
	if !eng.RunUntilDone(50_000_000) {
		t.Fatal("simulation did not drain")
	}
	if finish < 0 {
		t.Fatal("core never finished")
	}
	return c, mem, finish
}

func TestCoreCompletesTrace(t *testing.T) {
	c, mem, finish := runCore(t, coreProfile(trace.PatternRandom, 20, 0.25), defaultCfg(), 100, 1000)
	if done, ft := c.Finished(); !done || ft != finish {
		t.Fatal("finish state inconsistent")
	}
	if mem.reads+mem.writes != 1000 {
		t.Fatalf("memory refs = %d, want 1000", mem.reads+mem.writes)
	}
	if c.Stats.Loads+c.Stats.Stores != 1000 {
		t.Fatalf("stats refs = %d", c.Stats.Loads+c.Stats.Stores)
	}
	if c.Stats.Instructions < 1000 {
		t.Fatalf("instructions = %d, want >= refs", c.Stats.Instructions)
	}
}

func TestLatencySensitivity(t *testing.T) {
	// Pointer-chase (MLP=1) runtime must scale with memory latency.
	prof := coreProfile(trace.PatternPointerChase, 10, 0)
	_, _, fast := runCore(t, prof, defaultCfg(), 50, 500)
	_, _, slow := runCore(t, prof, defaultCfg(), 500, 500)
	ratio := float64(slow) / float64(fast)
	if ratio < 5 {
		t.Fatalf("10x latency gave only %.1fx slowdown for dependent loads", ratio)
	}
}

func TestMLPHidesLatencyForIndependentLoads(t *testing.T) {
	// At equal latency, independent loads overlap in the MSHRs while
	// dependent loads serialize: the independent stream must run several
	// times faster and reach high memory-level parallelism.
	indep, indepMem, tIndep := runCore(t, coreProfile(trace.PatternRandom, 10, 0), defaultCfg(), 400, 500)
	_, _, tDep := runCore(t, coreProfile(trace.PatternPointerChase, 10, 0), defaultCfg(), 400, 500)
	if indepMem.maxInFlight < 8 {
		t.Fatalf("independent loads reached MLP %d, want >= 8", indepMem.maxInFlight)
	}
	if float64(tDep) < float64(tIndep)*4 {
		t.Fatalf("dependent %d vs independent %d cycles; want >= 4x gap", tDep, tIndep)
	}
	_ = indep
}

func TestMSHRLimitRespected(t *testing.T) {
	cfg := defaultCfg()
	cfg.MSHRs = 4
	_, mem, _ := runCore(t, coreProfile(trace.PatternRandom, 2, 0), cfg, 1000, 500)
	if mem.maxInFlight > 4 {
		t.Fatalf("in-flight reads peaked at %d with 4 MSHRs", mem.maxInFlight)
	}
}

func TestROBLimitBoundsRunahead(t *testing.T) {
	// With a tiny ROB the core cannot overlap distant loads even with
	// many MSHRs: runtime approaches serialized latency.
	prof := coreProfile(trace.PatternRandom, 40, 0)
	small := defaultCfg()
	small.ROBSize = 8
	big := defaultCfg()
	big.ROBSize = 1024
	_, _, tSmall := runCore(t, prof, small, 400, 500)
	_, _, tBig := runCore(t, prof, big, 400, 500)
	if float64(tSmall) < float64(tBig)*1.5 {
		t.Fatalf("small ROB (%d) not slower than big ROB (%d)", tSmall, tBig)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	_, mem, _ := runCore(t, coreProfile(trace.PatternPointerChase, 5, 0), defaultCfg(), 200, 300)
	if mem.maxInFlight > 1 {
		t.Fatalf("dependent loads overlapped: max in-flight = %d", mem.maxInFlight)
	}
}

func TestStoresArePosted(t *testing.T) {
	// A store-only stream never blocks on memory: runtime is issue-bound.
	prof := coreProfile(trace.PatternStream, 8, 1.0)
	c, mem, finish := runCore(t, prof, defaultCfg(), 100000, 1000)
	if mem.writes != 1000 || mem.reads != 0 {
		t.Fatalf("traffic = %d reads, %d writes", mem.reads, mem.writes)
	}
	// ~8000 instructions at 4 IPC ~= 2000 cycles.
	idealCycles := c.Stats.Instructions / 4
	if finish > idealCycles*3/2 {
		t.Fatalf("store stream took %d cycles, issue-bound ideal %d", finish, idealCycles)
	}
}

func TestIPCWithinIssueWidth(t *testing.T) {
	c, _, _ := runCore(t, coreProfile(trace.PatternRandom, 30, 0.2), defaultCfg(), 80, 2000)
	ipc := c.IPC()
	if ipc <= 0 || ipc > 4 {
		t.Fatalf("IPC = %.2f, want (0, 4]", ipc)
	}
}

func TestStallCyclesTracked(t *testing.T) {
	c, _, _ := runCore(t, coreProfile(trace.PatternPointerChase, 5, 0), defaultCfg(), 500, 300)
	if c.Stats.StallCycles == 0 {
		t.Fatal("dependent loads at 500-cycle latency must stall")
	}
}

func TestNewCoreValidation(t *testing.T) {
	eng := sim.NewEngine()
	gen := trace.NewGenerator(coreProfile(trace.PatternRandom, 5, 0), 1, 0)
	mem := &fixedMem{eng: eng, latency: 1}
	for _, f := range []func(){
		func() { NewCore(eng, 0, Config{IssueWidth: 0, ROBSize: 10, MSHRs: 10}, gen, 10, mem, nil) },
		func() { NewCore(eng, 0, Config{IssueWidth: 4, ROBSize: 0, MSHRs: 10}, gen, 10, mem, nil) },
		func() { NewCore(eng, 0, Config{IssueWidth: 4, ROBSize: 10, MSHRs: 0}, gen, 10, mem, nil) },
		func() { NewCore(eng, 0, defaultCfg(), gen, 0, mem, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine()
		mem := &fixedMem{eng: eng, latency: 77}
		gen := trace.NewGenerator(coreProfile(trace.PatternPageLocal, 12, 0.3), 5, 0)
		var finish sim.Time
		c := NewCore(eng, 0, defaultCfg(), gen, 800, mem, func(now sim.Time) { finish = now })
		c.Start()
		eng.RunUntilDone(10_000_000)
		return finish
	}
	if run() != run() {
		t.Fatal("core simulation not deterministic")
	}
}

func TestIPCZeroBeforeFinish(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fixedMem{eng: eng, latency: 1000}
	gen := trace.NewGenerator(coreProfile(trace.PatternRandom, 5, 0), 1, 0)
	c := NewCore(eng, 0, defaultCfg(), gen, 1000, mem, nil)
	c.Start()
	if c.IPC() != 0 {
		t.Fatal("IPC before finish should be 0")
	}
	if done, _ := c.Finished(); done {
		t.Fatal("core finished without running")
	}
}

func TestStartAtOffsetsFirstActivity(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fixedMem{eng: eng, latency: 10}
	gen := trace.NewGenerator(coreProfile(trace.PatternStream, 2, 0), 1, 0)
	var finish sim.Time
	c := NewCore(eng, 0, defaultCfg(), gen, 50, mem, func(now sim.Time) { finish = now })
	c.StartAt(500)
	eng.RunUntilDone(1_000_000)
	if finish < 500 {
		t.Fatalf("core finished at %d despite starting at 500", finish)
	}
}

func TestFileTraceDrivesCore(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fixedMem{eng: eng, latency: 20}
	ft, err := trace.ParseTrace(strings.NewReader("R 0x0 4\nW 0x40 4\nR 0x80 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	var finish sim.Time
	c := NewCore(eng, 0, defaultCfg(), ft, 9, mem, func(now sim.Time) { finish = now }) // 3 loops
	c.Start()
	eng.RunUntilDone(1_000_000)
	if finish == 0 {
		t.Fatal("core did not finish")
	}
	if mem.reads != 6 || mem.writes != 3 {
		t.Fatalf("traffic = %d reads, %d writes; want 6/3", mem.reads, mem.writes)
	}
}
