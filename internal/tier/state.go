package tier

import (
	"fmt"
	"sort"

	"attache/internal/core"
)

// NearLineState is one near-resident line in the serialized image.
type NearLineState struct {
	Addr uint64
	Freq uint64
	Data [LineSize]byte
}

// FreqCount is one decaying access counter for a far-resident address.
type FreqCount struct {
	Addr  uint64
	Count uint64
}

// State is the serializable image of the tier layer: near residency in
// recency order, the freq policy's decaying counters, and the traffic
// counters. The far tier serializes separately as a core.MemoryState.
type State struct {
	// Near lists the near-resident lines least-recently-used first, so
	// replaying them through pushFront rebuilds the exact recency list.
	Near []NearLineState
	// FarFreq is sorted by address.
	FarFreq []FreqCount
	// FreqOps is the decay clock (accesses since the last halving).
	FreqOps uint64
	// Counters holds nearReads, nearWrites, farReads, farWrites,
	// promotions, demotions — in that order.
	Counters [6]uint64
}

// ExportState captures the tier layer's state. Everything is copied.
func (m *Memory) ExportState() *State {
	st := &State{
		Near:    make([]NearLineState, 0, len(m.near)),
		FreqOps: m.accesses,
		Counters: [6]uint64{
			m.c.nearReads, m.c.nearWrites,
			m.c.farReads, m.c.farWrites,
			m.c.promotions, m.c.demotions,
		},
	}
	for n := m.tail; n != nil; n = n.prev {
		st.Near = append(st.Near, NearLineState{Addr: n.addr, Freq: n.freq, Data: n.data})
	}
	if m.farFreq != nil {
		st.FarFreq = make([]FreqCount, 0, len(m.farFreq))
		for a, c := range m.farFreq {
			st.FarFreq = append(st.FarFreq, FreqCount{Addr: a, Count: c})
		}
		sort.Slice(st.FarFreq, func(i, j int) bool { return st.FarFreq[i].Addr < st.FarFreq[j].Addr })
	}
	return st
}

// RestoreMemory builds a tiered memory over an already-restored far
// memory and overwrites the tier layer's state from a snapshot. It
// validates exclusive residency (no near line may also exist far) and
// the capacity bound.
func RestoreMemory(cfg Config, far *core.Memory, st *State) (*Memory, error) {
	m, err := NewMemory(cfg, far)
	if err != nil {
		return nil, err
	}
	if m.cfg.NearLines >= 0 && int64(len(st.Near)) > m.cfg.NearLines {
		return nil, fmt.Errorf("tier: snapshot has %d near lines, capacity is %d", len(st.Near), m.cfg.NearLines)
	}
	for _, l := range st.Near {
		if _, dup := m.near[l.Addr]; dup {
			return nil, fmt.Errorf("tier: snapshot stores near line %#x twice", l.Addr)
		}
		if far.Contains(l.Addr) {
			return nil, fmt.Errorf("tier: snapshot line %#x resides in both tiers", l.Addr)
		}
		n := &node{addr: l.Addr, freq: l.Freq, data: l.Data}
		m.near[l.Addr] = n
		m.pushFront(n)
	}
	if len(st.FarFreq) > 0 && m.farFreq == nil {
		return nil, fmt.Errorf("tier: snapshot has freq counters but policy is %q", m.cfg.Policy)
	}
	for i, f := range st.FarFreq {
		if i > 0 && st.FarFreq[i-1].Addr >= f.Addr {
			return nil, fmt.Errorf("tier: snapshot freq counters not strictly sorted at index %d", i)
		}
		m.farFreq[f.Addr] = f.Count
	}
	m.accesses = st.FreqOps
	m.c = counters{
		nearReads:  st.Counters[0],
		nearWrites: st.Counters[1],
		farReads:   st.Counters[2],
		farWrites:  st.Counters[3],
		promotions: st.Counters[4],
		demotions:  st.Counters[5],
	}
	return m, nil
}
