// Package tier implements a two-tier memory backend for the CXL
// memory-expansion scenario: a small uncompressed near tier (local
// DRAM) in front of a large compressed far tier (a core.Memory with
// Attaché-style metadata elision) that sits behind a slower link.
//
// Residency is exclusive — every line lives in exactly one tier.
// Lines are born in the far tier; a promotion policy decides when an
// accessed far line moves near (and which near line demotes to make
// room). Three policies are provided:
//
//   - lru:    promote on every access, evict the least-recently-used
//     near line. The classic hot-tier shape.
//   - freq:   promote once an address has been touched Threshold times,
//     tracked with decaying counters so stale heat drains away. Evicts
//     the least-frequently-used near line (LRU tie-break).
//   - static: pin-by-prefix — only addresses whose page prefix matches
//     the configured pin go near; nothing ever demotes.
//
// A configurable LinkModel (per-access latency, bandwidth multiplier,
// per-byte energy) turns the traffic split into modeled far-link cost
// and energy figures, surfaced via Snapshot.
//
// A Memory is NOT safe for concurrent use, exactly like core.Memory;
// the sharded engine guards each shard's tier with its execution lock.
package tier

import (
	"fmt"

	"attache/internal/core"
)

// LineSize mirrors the framework's access granularity.
const LineSize = core.LineSize

// Policy names.
const (
	PolicyLRU    = "lru"
	PolicyFreq   = "freq"
	PolicyStatic = "static"
)

// LinkModel prices far-tier traffic: the far link is slower (latency),
// narrower (bandwidth multiplier on bytes moved), and costlier per byte
// (energy) than near DRAM. All figures are modeled, not measured.
type LinkModel struct {
	// FarLatencyNs is the added latency charged per far-tier access.
	FarLatencyNs float64 `json:"far_latency_ns"`
	// FarBandwidthMult scales far-link bytes (>= 1 models link framing
	// and protocol overhead on the CXL path).
	FarBandwidthMult float64 `json:"far_bandwidth_mult"`
	// NearEnergyPerByte / FarEnergyPerByte are in pJ/byte.
	NearEnergyPerByte float64 `json:"near_energy_per_byte"`
	FarEnergyPerByte  float64 `json:"far_energy_per_byte"`
}

// DefaultLink returns a CXL-flavored cost model: ~250 ns added link
// latency, 1.0× bandwidth framing, and far accesses ~5× the energy of
// near DRAM per byte.
func DefaultLink() LinkModel {
	return LinkModel{
		FarLatencyNs:      250,
		FarBandwidthMult:  1.0,
		NearEnergyPerByte: 0.3,
		FarEnergyPerByte:  1.5,
	}
}

// Config describes a two-tier backend. The zero value is invalid; see
// Validate. NearLines is the engine-level near-tier capacity in lines:
// 0 means a zero-capacity near tier (every access goes far — by
// construction bit-identical to a plain compressed engine), and a
// negative value means unbounded.
type Config struct {
	NearLines int64  `json:"near_lines"`
	Policy    string `json:"policy"` // "" defaults to lru

	// FreqThreshold is the access count at which the freq policy
	// promotes (0 defaults to 2); FreqDecayEvery halves all counters
	// after that many tier accesses (0 defaults to 1024).
	FreqThreshold  uint64 `json:"freq_threshold,omitempty"`
	FreqDecayEvery uint64 `json:"freq_decay_every,omitempty"`

	// PinShift/PinPrefix configure the static policy: an address is
	// pinned near iff addr>>PinShift == PinPrefix.
	PinShift  uint32 `json:"pin_shift,omitempty"`
	PinPrefix uint64 `json:"pin_prefix,omitempty"`

	// Link prices far traffic; the zero value takes DefaultLink.
	Link LinkModel `json:"link"`
}

// WithDefaults fills unset fields with their documented defaults.
func (c Config) WithDefaults() Config {
	if c.Policy == "" {
		c.Policy = PolicyLRU
	}
	if c.FreqThreshold == 0 {
		c.FreqThreshold = 2
	}
	if c.FreqDecayEvery == 0 {
		c.FreqDecayEvery = 1024
	}
	if c.Link == (LinkModel{}) {
		c.Link = DefaultLink()
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch c.Policy {
	case "", PolicyLRU, PolicyFreq, PolicyStatic:
	default:
		return fmt.Errorf("tier: unknown policy %q (want lru, freq, or static)", c.Policy)
	}
	if c.PinShift > 63 {
		return fmt.Errorf("tier: pin shift %d out of range [0,63]", c.PinShift)
	}
	if c.Link.FarBandwidthMult < 0 || c.Link.FarLatencyNs < 0 ||
		c.Link.NearEnergyPerByte < 0 || c.Link.FarEnergyPerByte < 0 {
		return fmt.Errorf("tier: link model fields must be non-negative")
	}
	return nil
}

// node is one near-resident line on the intrusive recency list (MRU at
// head). freq backs the freq policy's victim choice and is maintained
// for every policy, so snapshots are policy-independent.
type node struct {
	addr       uint64
	freq       uint64
	prev, next *node
	data       [LineSize]byte
}

// Memory is the two-tier backend: an uncompressed near tier in front of
// a compressed far core.Memory, with exclusive residency.
type Memory struct {
	cfg Config
	far *core.Memory

	near       map[uint64]*node
	head, tail *node

	// farFreq tracks access counts for far-resident addresses (freq
	// policy only); accesses is the decay clock.
	farFreq  map[uint64]uint64
	accesses uint64

	c counters
}

type counters struct {
	nearReads  uint64
	nearWrites uint64
	farReads   uint64
	farWrites  uint64
	promotions uint64
	demotions  uint64
}

// NewMemory builds a tiered memory in front of far. The far memory must
// be exclusively owned by the tier from now on.
func NewMemory(cfg Config, far *core.Memory) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	m := &Memory{cfg: cfg, far: far, near: make(map[uint64]*node)}
	if cfg.Policy == PolicyFreq {
		m.farFreq = make(map[uint64]uint64)
	}
	return m, nil
}

// Far exposes the far-tier memory, mainly for stats and tests.
func (m *Memory) Far() *core.Memory { return m.far }

// Config reports the (defaulted) configuration.
func (m *Memory) Config() Config { return m.cfg }

// NearResident reports how many lines are currently near.
func (m *Memory) NearResident() int { return len(m.near) }

// list helpers -----------------------------------------------------------

func (m *Memory) pushFront(n *node) {
	n.prev = nil
	n.next = m.head
	if m.head != nil {
		m.head.prev = n
	}
	m.head = n
	if m.tail == nil {
		m.tail = n
	}
}

func (m *Memory) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		m.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		m.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (m *Memory) moveToFront(n *node) {
	if m.head == n {
		return
	}
	m.unlink(n)
	m.pushFront(n)
}

// policy helpers ---------------------------------------------------------

func (m *Memory) pinned(addr uint64) bool {
	return addr>>uint(m.cfg.PinShift) == m.cfg.PinPrefix
}

// tick advances the freq policy's decay clock; after FreqDecayEvery
// tier accesses every counter halves and zeroed far counters drop, so
// the tracking map stays bounded by the working set's recent heat.
func (m *Memory) tick() {
	if m.cfg.Policy != PolicyFreq {
		return
	}
	m.accesses++
	if m.accesses < m.cfg.FreqDecayEvery {
		return
	}
	m.accesses = 0
	for n := m.head; n != nil; n = n.next {
		n.freq >>= 1
	}
	for a, c := range m.farFreq {
		c >>= 1
		if c == 0 {
			delete(m.farFreq, a)
		} else {
			m.farFreq[a] = c
		}
	}
}

// noteFar records an access to a far-resident address and reports
// whether the policy wants it near. Capacity is NOT checked here —
// install handles eviction — except for static, which never evicts and
// therefore only admits while there is room.
func (m *Memory) noteFar(addr uint64) bool {
	m.tick()
	switch m.cfg.Policy {
	case PolicyLRU:
		return m.cfg.NearLines != 0
	case PolicyFreq:
		if m.cfg.NearLines == 0 {
			return false
		}
		m.farFreq[addr]++
		return m.farFreq[addr] >= m.cfg.FreqThreshold
	case PolicyStatic:
		if !m.pinned(addr) {
			return false
		}
		return m.cfg.NearLines < 0 || int64(len(m.near)) < m.cfg.NearLines
	}
	return false
}

// victim picks the near line to demote when the tier is full. ok=false
// blocks the promotion instead (static never demotes).
func (m *Memory) victim() (*node, bool) {
	switch m.cfg.Policy {
	case PolicyLRU:
		return m.tail, m.tail != nil
	case PolicyFreq:
		// Least-frequent wins; ties break toward the least-recently-used
		// end of the list (scan starts at the tail and strict < keeps the
		// earliest minimum), so victim choice is fully deterministic.
		var best *node
		for n := m.tail; n != nil; n = n.prev {
			if best == nil || n.freq < best.freq {
				best = n
			}
		}
		return best, best != nil
	case PolicyStatic:
		return nil, false
	}
	return nil, false
}

// install moves a line into the near tier (the caller already holds its
// 64 raw bytes), demoting a victim if the tier is full and deleting any
// far copy so residency stays exclusive. Counts one promotion. It
// reports false when the policy declined to make room (the line stays
// far); any error comes from the demotion writeback.
func (m *Memory) install(addr uint64, data []byte) (bool, error) {
	if m.cfg.NearLines >= 0 && int64(len(m.near)) >= m.cfg.NearLines {
		v, ok := m.victim()
		if !ok {
			return false, nil
		}
		if err := m.far.Write(v.addr, v.data[:]); err != nil {
			return false, fmt.Errorf("tier: demoting line %#x: %w", v.addr, err)
		}
		m.unlink(v)
		delete(m.near, v.addr)
		m.c.demotions++
	}
	n := &node{addr: addr}
	copy(n.data[:], data)
	if m.cfg.Policy == PolicyFreq {
		n.freq = m.farFreq[addr]
		delete(m.farFreq, addr)
	}
	m.near[addr] = n
	m.pushFront(n)
	m.far.Delete(addr)
	m.c.promotions++
	return true, nil
}

// Read loads the 64-byte line at lineAddr from whichever tier holds it.
// Reading a never-written line returns core's ErrNeverWritten.
func (m *Memory) Read(lineAddr uint64) ([]byte, error) {
	if n := m.near[lineAddr]; n != nil {
		m.tick()
		m.moveToFront(n)
		n.freq++
		m.c.nearReads++
		out := make([]byte, LineSize)
		copy(out, n.data[:])
		return out, nil
	}
	data, err := m.far.Read(lineAddr)
	if err != nil {
		return nil, err
	}
	m.c.farReads++
	if m.noteFar(lineAddr) {
		if _, err := m.install(lineAddr, data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// Write stores a 64-byte line at lineAddr. Near-resident lines update
// in place; other lines write far unless the policy write-allocates
// them into the near tier (counted as a promotion — the line enters the
// near tier — that costs no far read).
func (m *Memory) Write(lineAddr uint64, data []byte) error {
	if len(data) != LineSize {
		// Delegate validation so the error is byte-identical to the
		// untiered engine's; far.Write rejects before mutating anything.
		return m.far.Write(lineAddr, data)
	}
	if n := m.near[lineAddr]; n != nil {
		m.tick()
		m.moveToFront(n)
		n.freq++
		copy(n.data[:], data)
		m.c.nearWrites++
		return nil
	}
	if m.noteFar(lineAddr) {
		installed, err := m.install(lineAddr, data)
		if err != nil {
			return err
		}
		if installed {
			m.c.nearWrites++
			return nil
		}
	}
	if err := m.far.Write(lineAddr, data); err != nil {
		return err
	}
	m.c.farWrites++
	return nil
}

// Snapshot captures the tier's traffic split and modeled link costs.
type Snapshot struct {
	Policy       string `json:"policy"`
	NearCapacity int64  `json:"near_capacity"` // -1 means unbounded
	NearResident uint64 `json:"near_resident"`
	FarResident  uint64 `json:"far_resident"`

	NearReads  uint64 `json:"near_reads"`
	NearWrites uint64 `json:"near_writes"`
	FarReads   uint64 `json:"far_reads"`  // client reads served far
	FarWrites  uint64 `json:"far_writes"` // client writes landing far
	Promotions uint64 `json:"promotions"`
	Demotions  uint64 `json:"demotions"`

	// FarAccesses/FarLinkBlocks are the far memory's own totals
	// (client ops plus demotion writebacks); the float figures apply
	// the LinkModel to them.
	FarAccesses   uint64  `json:"far_accesses"`
	FarLinkBlocks uint64  `json:"far_link_blocks"`
	FarLinkBytes  float64 `json:"far_link_bytes"`
	FarLatencyNs  float64 `json:"far_latency_ns"`
	NearBytes     uint64  `json:"near_bytes"`
	EnergyPJ      float64 `json:"energy_pj"`
}

// Snapshot derives the tier snapshot from the live counters and the far
// memory's own stats. Like every Memory method it must not race with
// Read/Write.
func (m *Memory) Snapshot() Snapshot {
	far := m.far.StatsSnapshot()
	cap64 := m.cfg.NearLines
	if cap64 < 0 {
		cap64 = -1
	}
	s := Snapshot{
		Policy:       m.cfg.Policy,
		NearCapacity: cap64,
		NearResident: uint64(len(m.near)),
		FarResident:  far.Lines,
		NearReads:    m.c.nearReads,
		NearWrites:   m.c.nearWrites,
		FarReads:     m.c.farReads,
		FarWrites:    m.c.farWrites,
		Promotions:   m.c.promotions,
		Demotions:    m.c.demotions,
		FarAccesses:  far.Reads + far.Writes,
	}
	s.FarLinkBlocks = far.BlocksRead + far.BlocksWritten
	s.FarLinkBytes = float64(s.FarLinkBlocks*core.SubRankBlock) * m.cfg.Link.FarBandwidthMult
	s.FarLatencyNs = float64(s.FarAccesses) * m.cfg.Link.FarLatencyNs
	// Near traffic: every near read/write moves one line, and every
	// promotion/demotion installs or extracts one.
	s.NearBytes = (s.NearReads + s.NearWrites + s.Promotions + s.Demotions) * LineSize
	s.EnergyPJ = float64(s.NearBytes)*m.cfg.Link.NearEnergyPerByte +
		s.FarLinkBytes*m.cfg.Link.FarEnergyPerByte
	return s
}

// Accumulate folds another tier snapshot into s, so per-shard (and
// per-instance) snapshots merge into engine- and fleet-level figures.
// Policy is kept from the receiver; an unbounded capacity on either
// side makes the merged capacity unbounded.
func (s *Snapshot) Accumulate(o Snapshot) {
	if s.Policy == "" {
		s.Policy = o.Policy
	}
	if s.NearCapacity < 0 || o.NearCapacity < 0 {
		s.NearCapacity = -1
	} else {
		s.NearCapacity += o.NearCapacity
	}
	s.NearResident += o.NearResident
	s.FarResident += o.FarResident
	s.NearReads += o.NearReads
	s.NearWrites += o.NearWrites
	s.FarReads += o.FarReads
	s.FarWrites += o.FarWrites
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
	s.FarAccesses += o.FarAccesses
	s.FarLinkBlocks += o.FarLinkBlocks
	s.FarLinkBytes += o.FarLinkBytes
	s.FarLatencyNs += o.FarLatencyNs
	s.NearBytes += o.NearBytes
	s.EnergyPJ += o.EnergyPJ
}
