package tier

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the command-line tier spec shared by attached -tiers
// and attacheload -tiers:
//
//	near=LINES[,policy=lru|freq|static][,freq-threshold=N][,freq-decay=N]
//	    [,pin=PREFIX@SHIFT][,lat=NS][,bw=MULT][,near-energy=PJ][,far-energy=PJ]
//
// near is mandatory (-1 = unbounded, 0 = a zero-capacity passthrough
// tier); everything else defaults per Config.WithDefaults. The returned
// config is validated.
func ParseSpec(s string) (*Config, error) {
	cfg := Config{Link: DefaultLink()}
	sawNear := false
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("tier: bad spec entry %q (want key=value)", part)
		}
		switch key {
		case "near":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tier: bad near %q (want line count, -1 = unbounded)", val)
			}
			cfg.NearLines = n
			sawNear = true
		case "policy":
			cfg.Policy = val
		case "freq-threshold":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tier: bad freq-threshold %q", val)
			}
			cfg.FreqThreshold = n
		case "freq-decay":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tier: bad freq-decay %q", val)
			}
			cfg.FreqDecayEvery = n
		case "pin":
			prefixStr, shiftStr, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("tier: bad pin %q (want PREFIX@SHIFT)", val)
			}
			prefix, err := strconv.ParseUint(prefixStr, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("tier: bad pin prefix %q", prefixStr)
			}
			shift, err := strconv.ParseUint(shiftStr, 10, 32)
			if err != nil || shift > 63 {
				return nil, fmt.Errorf("tier: bad pin shift %q (want [0,63])", shiftStr)
			}
			cfg.PinPrefix = prefix
			cfg.PinShift = uint32(shift)
		case "lat":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("tier: bad lat %q (want ns >= 0)", val)
			}
			cfg.Link.FarLatencyNs = f
		case "bw":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return nil, fmt.Errorf("tier: bad bw %q (want multiplier > 0)", val)
			}
			cfg.Link.FarBandwidthMult = f
		case "near-energy":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("tier: bad near-energy %q (want pJ/byte >= 0)", val)
			}
			cfg.Link.NearEnergyPerByte = f
		case "far-energy":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("tier: bad far-energy %q (want pJ/byte >= 0)", val)
			}
			cfg.Link.FarEnergyPerByte = f
		default:
			return nil, fmt.Errorf("tier: unknown spec key %q", key)
		}
	}
	if !sawNear {
		return nil, fmt.Errorf("tier: spec is missing near=LINES (use -1 for unbounded)")
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}
