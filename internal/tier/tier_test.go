package tier

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"attache/internal/core"
)

func newFar(t *testing.T, seed int64) *core.Memory {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Seed = seed
	far, err := core.NewMemory(opts)
	if err != nil {
		t.Fatal(err)
	}
	return far
}

func newTier(t *testing.T, cfg Config, seed int64) *Memory {
	t.Helper()
	m, err := NewMemory(cfg, newFar(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func line(tag uint64) []byte {
	b := make([]byte, LineSize)
	for i := 0; i < LineSize; i += 8 {
		v := tag*0x9E3779B97F4A7C15 + uint64(i)
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return b
}

// checkInvariants asserts the conservation laws that define the tier:
// exclusive residency, the promotion/demotion balance, read and write
// conservation against the far memory's own counters.
func checkInvariants(t *testing.T, m *Memory, okReads uint64) {
	t.Helper()
	s := m.Snapshot()
	far := m.Far().StatsSnapshot()

	// Exclusive residency: no near-resident address may also be far.
	st := m.ExportState()
	seen := make(map[uint64]bool, len(st.Near))
	for _, n := range st.Near {
		if seen[n.Addr] {
			t.Fatalf("address %#x resident near twice", n.Addr)
		}
		seen[n.Addr] = true
		if m.Far().Contains(n.Addr) {
			t.Fatalf("address %#x resident in both tiers", n.Addr)
		}
	}

	// Every promotion either displaced a line (demotion) or grew the
	// near tier: promotions == demotions + near_resident.
	if s.Promotions != s.Demotions+s.NearResident {
		t.Fatalf("promotion balance broken: %d promotions != %d demotions + %d resident",
			s.Promotions, s.Demotions, s.NearResident)
	}

	// Reads conservation: every successful client read was served by
	// exactly one tier.
	if okReads != s.NearReads+s.FarReads {
		t.Fatalf("reads not conserved: %d ok reads != %d near + %d far",
			okReads, s.NearReads, s.FarReads)
	}

	// The far memory's own traffic decomposes into client far ops plus
	// demotion writebacks.
	if far.Reads != s.FarReads {
		t.Fatalf("far core reads %d != tier far reads %d", far.Reads, s.FarReads)
	}
	if far.Writes != s.FarWrites+s.Demotions {
		t.Fatalf("far core writes %d != tier far writes %d + demotions %d",
			far.Writes, s.FarWrites, s.Demotions)
	}
}

// TestTierInvariantsProperty drives randomized workloads over every
// policy and several seeds and checks the conservation laws hold at
// every step boundary, with the data read back always matching the data
// last written.
func TestTierInvariantsProperty(t *testing.T) {
	configs := []Config{
		{NearLines: 8, Policy: PolicyLRU},
		{NearLines: 8, Policy: PolicyFreq, FreqThreshold: 2, FreqDecayEvery: 64},
		{NearLines: 8, Policy: PolicyStatic, PinShift: 4, PinPrefix: 1},
		{NearLines: 1, Policy: PolicyLRU},
		{NearLines: -1, Policy: PolicyLRU},
		{NearLines: 0, Policy: PolicyFreq},
	}
	for _, cfg := range configs {
		for _, seed := range []int64{1, 7, 42} {
			name := fmt.Sprintf("%s/near=%d/seed=%d", cfg.WithDefaults().Policy, cfg.NearLines, seed)
			t.Run(name, func(t *testing.T) {
				m := newTier(t, cfg, seed)
				rng := rand.New(rand.NewSource(seed))
				written := make(map[uint64][]byte)
				var okReads uint64
				const space = 64
				for i := 0; i < 2000; i++ {
					addr := uint64(rng.Intn(space))
					if rng.Intn(2) == 0 {
						data := line(addr*1000 + uint64(i))
						if err := m.Write(addr, data); err != nil {
							t.Fatalf("write %#x: %v", addr, err)
						}
						written[addr] = data
					} else {
						got, err := m.Read(addr)
						want, ok := written[addr]
						if !ok {
							if !errors.Is(err, core.ErrNeverWritten) {
								t.Fatalf("read of unwritten %#x: got %v, want ErrNeverWritten", addr, err)
							}
							continue
						}
						if err != nil {
							t.Fatalf("read %#x: %v", addr, err)
						}
						okReads++
						if !bytes.Equal(got, want) {
							t.Fatalf("read %#x returned wrong data", addr)
						}
					}
					if i%97 == 0 {
						checkInvariants(t, m, okReads)
					}
				}
				checkInvariants(t, m, okReads)
			})
		}
	}
}

// TestZeroCapacityNearBitIdentical: a zero-capacity near tier is a pure
// passthrough — every result and every stats counter matches a plain
// compressed memory driven with the same sequence.
func TestZeroCapacityNearBitIdentical(t *testing.T) {
	const seed = 42
	tiered := newTier(t, Config{NearLines: 0, Policy: PolicyLRU}, seed)
	plain := newFar(t, seed)

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 1500; i++ {
		addr := uint64(rng.Intn(128))
		if rng.Intn(2) == 0 {
			data := line(addr + uint64(i))
			e1 := tiered.Write(addr, data)
			e2 := plain.Write(addr, data)
			if (e1 == nil) != (e2 == nil) || (e1 != nil && e1.Error() != e2.Error()) {
				t.Fatalf("write %#x: tiered err %v, plain err %v", addr, e1, e2)
			}
		} else {
			d1, e1 := tiered.Read(addr)
			d2, e2 := plain.Read(addr)
			if (e1 == nil) != (e2 == nil) || (e1 != nil && e1.Error() != e2.Error()) {
				t.Fatalf("read %#x: tiered err %v, plain err %v", addr, e1, e2)
			}
			if !bytes.Equal(d1, d2) {
				t.Fatalf("read %#x: tiered and plain data diverge", addr)
			}
		}
	}
	// Bad-size writes must produce the identical error too.
	e1 := tiered.Write(1, []byte{1, 2, 3})
	e2 := plain.Write(1, []byte{1, 2, 3})
	if e1 == nil || e2 == nil || e1.Error() != e2.Error() {
		t.Fatalf("bad-size write errors diverge: %v vs %v", e1, e2)
	}

	ts, ps := tiered.Far().StatsSnapshot(), plain.StatsSnapshot()
	if !reflect.DeepEqual(ts, ps) {
		t.Fatalf("far stats diverge from plain memory:\n tiered %+v\n plain  %+v", ts, ps)
	}
	s := tiered.Snapshot()
	if s.NearReads != 0 || s.NearWrites != 0 || s.Promotions != 0 || s.Demotions != 0 || s.NearResident != 0 {
		t.Fatalf("zero-capacity tier saw near traffic: %+v", s)
	}
}

// TestUnboundedNearAbsorbsEverything: with an unbounded near tier every
// write allocates near and every read of written data hits near, so the
// far link carries zero traffic.
func TestUnboundedNearAbsorbsEverything(t *testing.T) {
	m := newTier(t, Config{NearLines: -1, Policy: PolicyLRU}, 7)
	for a := uint64(0); a < 200; a++ {
		if err := m.Write(a, line(a)); err != nil {
			t.Fatal(err)
		}
	}
	for a := uint64(0); a < 200; a++ {
		got, err := m.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, line(a)) {
			t.Fatalf("line %#x corrupted", a)
		}
	}
	s := m.Snapshot()
	if s.FarAccesses != 0 || s.FarLinkBlocks != 0 || s.FarReads != 0 || s.FarWrites != 0 || s.Demotions != 0 {
		t.Fatalf("unbounded near tier leaked far traffic: %+v", s)
	}
	if s.NearResident != 200 || s.Promotions != 200 {
		t.Fatalf("expected 200 resident/promoted, got %d/%d", s.NearResident, s.Promotions)
	}
	if s.FarLinkBytes != 0 || s.FarLatencyNs != 0 {
		t.Fatalf("modeled far cost nonzero with zero far traffic: %+v", s)
	}
}

// TestLRUEvictionOrder: with capacity 2, touching A keeps it resident
// while the least-recently-used line demotes.
func TestLRUEvictionOrder(t *testing.T) {
	m := newTier(t, Config{NearLines: 2, Policy: PolicyLRU}, 1)
	for _, a := range []uint64{1, 2} {
		if err := m.Write(a, line(a)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Read(1); err != nil { // 1 is now MRU
		t.Fatal(err)
	}
	if err := m.Write(3, line(3)); err != nil { // evicts 2
		t.Fatal(err)
	}
	st := m.ExportState()
	resident := make(map[uint64]bool)
	for _, n := range st.Near {
		resident[n.Addr] = true
	}
	if !resident[1] || !resident[3] || resident[2] {
		t.Fatalf("LRU kept the wrong lines near: %v", resident)
	}
	if !m.Far().Contains(2) {
		t.Fatal("demoted line 2 lost instead of written far")
	}
	got, err := m.Read(2)
	if err != nil || !bytes.Equal(got, line(2)) {
		t.Fatalf("demoted line round-trip failed: %v", err)
	}
}

// TestFreqThresholdGate: the freq policy leaves a line far until it has
// been touched FreqThreshold times.
func TestFreqThresholdGate(t *testing.T) {
	m := newTier(t, Config{NearLines: 4, Policy: PolicyFreq, FreqThreshold: 3, FreqDecayEvery: 1 << 30}, 1)
	if err := m.Write(9, line(9)); err != nil { // touch 1: stays far
		t.Fatal(err)
	}
	if m.NearResident() != 0 {
		t.Fatalf("line promoted after 1 touch (threshold 3)")
	}
	if _, err := m.Read(9); err != nil { // touch 2: stays far
		t.Fatal(err)
	}
	if m.NearResident() != 0 {
		t.Fatalf("line promoted after 2 touches (threshold 3)")
	}
	if _, err := m.Read(9); err != nil { // touch 3: promotes
		t.Fatal(err)
	}
	if m.NearResident() != 1 {
		t.Fatalf("line not promoted after reaching threshold")
	}
	s := m.Snapshot()
	if s.Promotions != 1 || s.FarReads != 2 || s.FarWrites != 1 {
		t.Fatalf("unexpected freq traffic split: %+v", s)
	}
}

// TestStaticPinPolicy: only pinned addresses go near, nothing demotes,
// and a full pin region blocks further promotions rather than evicting.
func TestStaticPinPolicy(t *testing.T) {
	// Pin addr>>4 == 1, i.e. addresses 16..31.
	m := newTier(t, Config{NearLines: 2, Policy: PolicyStatic, PinShift: 4, PinPrefix: 1}, 1)
	for _, a := range []uint64{16, 17, 18, 40} {
		if err := m.Write(a, line(a)); err != nil {
			t.Fatal(err)
		}
	}
	st := m.ExportState()
	resident := make(map[uint64]bool)
	for _, n := range st.Near {
		resident[n.Addr] = true
	}
	if !resident[16] || !resident[17] {
		t.Fatalf("pinned addresses not near: %v", resident)
	}
	if resident[18] {
		t.Fatal("pinned address promoted past capacity (static must not evict)")
	}
	if resident[40] {
		t.Fatal("unpinned address promoted")
	}
	if s := m.Snapshot(); s.Demotions != 0 {
		t.Fatalf("static policy demoted %d lines", s.Demotions)
	}
}

// TestPolicyDeterminism: the same op sequence on two fresh tiers leaves
// byte-identical exported state — victim tie-breaking included.
func TestPolicyDeterminism(t *testing.T) {
	for _, policy := range []string{PolicyLRU, PolicyFreq, PolicyStatic} {
		t.Run(policy, func(t *testing.T) {
			run := func() *State {
				m := newTier(t, Config{NearLines: 4, Policy: policy, FreqThreshold: 2, FreqDecayEvery: 32, PinShift: 3, PinPrefix: 2}, 5)
				rng := rand.New(rand.NewSource(99))
				for i := 0; i < 1200; i++ {
					addr := uint64(rng.Intn(48))
					if rng.Intn(3) == 0 {
						if err := m.Write(addr, line(addr+uint64(i))); err != nil {
							t.Fatal(err)
						}
					} else {
						if _, err := m.Read(addr); err != nil && !errors.Is(err, core.ErrNeverWritten) {
							t.Fatal(err)
						}
					}
				}
				return m.ExportState()
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("identical runs diverged:\n a: %+v\n b: %+v", a, b)
			}
		})
	}
}

// TestTierStateRoundTrip: export mid-workload, restore into a fresh
// tier over a restored far memory, and drive both originals and
// restorations identically — results and snapshots must match exactly.
func TestTierStateRoundTrip(t *testing.T) {
	for _, policy := range []string{PolicyLRU, PolicyFreq, PolicyStatic} {
		t.Run(policy, func(t *testing.T) {
			cfg := Config{NearLines: 6, Policy: policy, FreqThreshold: 2, FreqDecayEvery: 64, PinShift: 3, PinPrefix: 1}
			m := newTier(t, cfg, 11)
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 800; i++ {
				addr := uint64(rng.Intn(40))
				if rng.Intn(2) == 0 {
					if err := m.Write(addr, line(addr^uint64(i))); err != nil {
						t.Fatal(err)
					}
				} else if _, err := m.Read(addr); err != nil && !errors.Is(err, core.ErrNeverWritten) {
					t.Fatal(err)
				}
			}

			farRestored, err := core.RestoreMemory(m.Far().Options(), m.Far().ExportState())
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreMemory(m.Config(), farRestored, m.ExportState())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m.Snapshot(), restored.Snapshot()) {
				t.Fatalf("snapshots diverge immediately after restore:\n %+v\n %+v", m.Snapshot(), restored.Snapshot())
			}

			// Second half on both: must stay in lockstep.
			for i := 0; i < 800; i++ {
				addr := uint64(rng.Intn(40))
				if rng.Intn(2) == 0 {
					data := line(addr + uint64(i)*7)
					e1, e2 := m.Write(addr, data), restored.Write(addr, data)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("write %#x diverged: %v vs %v", addr, e1, e2)
					}
				} else {
					d1, e1 := m.Read(addr)
					d2, e2 := restored.Read(addr)
					if (e1 == nil) != (e2 == nil) || !bytes.Equal(d1, d2) {
						t.Fatalf("read %#x diverged: %v vs %v", addr, e1, e2)
					}
				}
			}
			if !reflect.DeepEqual(m.Snapshot(), restored.Snapshot()) {
				t.Fatalf("snapshots diverge after post-restore workload:\n %+v\n %+v", m.Snapshot(), restored.Snapshot())
			}
		})
	}
}

// TestRestoreRejects: corrupted tier states are refused.
func TestRestoreRejects(t *testing.T) {
	cfg := Config{NearLines: 2, Policy: PolicyLRU}.WithDefaults()
	base := func(t *testing.T) (*core.Memory, *State) {
		m := newTier(t, cfg, 1)
		for _, a := range []uint64{1, 2, 3} {
			if err := m.Write(a, line(a)); err != nil {
				t.Fatal(err)
			}
		}
		far, err := core.RestoreMemory(m.Far().Options(), m.Far().ExportState())
		if err != nil {
			t.Fatal(err)
		}
		return far, m.ExportState()
	}

	t.Run("over-capacity", func(t *testing.T) {
		far, st := base(t)
		var extra NearLineState
		extra.Addr = 77
		st.Near = append(st.Near, extra)
		if _, err := RestoreMemory(cfg, far, st); err == nil {
			t.Fatal("restore accepted more near lines than capacity")
		}
	})
	t.Run("duplicate-near", func(t *testing.T) {
		far, st := base(t)
		st.Near[1] = st.Near[0]
		if _, err := RestoreMemory(cfg, far, st); err == nil {
			t.Fatal("restore accepted a duplicate near line")
		}
	})
	t.Run("dual-residency", func(t *testing.T) {
		far, st := base(t)
		// Make a near line also far-resident.
		if err := far.Write(st.Near[0].Addr, line(0)); err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreMemory(cfg, far, st); err == nil {
			t.Fatal("restore accepted a line resident in both tiers")
		}
	})
	t.Run("freq-state-for-lru", func(t *testing.T) {
		far, st := base(t)
		st.FarFreq = []FreqCount{{Addr: 1, Count: 2}}
		if _, err := RestoreMemory(cfg, far, st); err == nil {
			t.Fatal("restore accepted freq counters under the lru policy")
		}
	})
}

// TestSnapshotAccumulate covers the merge semantics used by engine- and
// cluster-level stat aggregation.
func TestSnapshotAccumulate(t *testing.T) {
	a := Snapshot{Policy: "lru", NearCapacity: 4, NearResident: 2, NearReads: 10, FarReads: 3, Promotions: 5, Demotions: 3, EnergyPJ: 100}
	b := Snapshot{Policy: "lru", NearCapacity: 4, NearResident: 1, NearReads: 7, FarReads: 2, Promotions: 2, Demotions: 1, EnergyPJ: 50}
	a.Accumulate(b)
	if a.NearCapacity != 8 || a.NearResident != 3 || a.NearReads != 17 || a.FarReads != 5 || a.Promotions != 7 || a.Demotions != 4 || a.EnergyPJ != 150 {
		t.Fatalf("merge wrong: %+v", a)
	}
	u := Snapshot{NearCapacity: -1}
	u.Accumulate(Snapshot{Policy: "freq", NearCapacity: 100})
	if u.NearCapacity != -1 || u.Policy != "freq" {
		t.Fatalf("unbounded merge wrong: %+v", u)
	}
}

// TestLinkModelFigures pins the derived cost math on a tiny case.
func TestLinkModelFigures(t *testing.T) {
	cfg := Config{NearLines: 0, Policy: PolicyLRU,
		Link: LinkModel{FarLatencyNs: 100, FarBandwidthMult: 2, NearEnergyPerByte: 1, FarEnergyPerByte: 3}}
	m := newTier(t, cfg, 1)
	if err := m.Write(5, line(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(5); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	far := m.Far().StatsSnapshot()
	wantBlocks := far.BlocksRead + far.BlocksWritten
	if s.FarAccesses != 2 || s.FarLinkBlocks != wantBlocks {
		t.Fatalf("far traffic wrong: %+v", s)
	}
	if want := float64(wantBlocks*core.SubRankBlock) * 2; s.FarLinkBytes != want {
		t.Fatalf("FarLinkBytes = %g, want %g", s.FarLinkBytes, want)
	}
	if want := 2 * 100.0; s.FarLatencyNs != want {
		t.Fatalf("FarLatencyNs = %g, want %g", s.FarLatencyNs, want)
	}
	if s.NearBytes != 0 {
		t.Fatalf("zero-capacity tier counted near bytes: %d", s.NearBytes)
	}
	if want := s.FarLinkBytes * 3; s.EnergyPJ != want {
		t.Fatalf("EnergyPJ = %g, want %g", s.EnergyPJ, want)
	}
}

// TestParseSpec covers the shared -tiers spec syntax.
func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("near=4096,policy=freq,freq-threshold=3,freq-decay=512,pin=0x1f@20,lat=350,bw=1.5,near-energy=0.2,far-energy=2")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NearLines != 4096 || cfg.Policy != PolicyFreq || cfg.FreqThreshold != 3 ||
		cfg.FreqDecayEvery != 512 || cfg.PinPrefix != 0x1f || cfg.PinShift != 20 {
		t.Fatalf("parsed config wrong: %+v", cfg)
	}
	if cfg.Link.FarLatencyNs != 350 || cfg.Link.FarBandwidthMult != 1.5 ||
		cfg.Link.NearEnergyPerByte != 0.2 || cfg.Link.FarEnergyPerByte != 2 {
		t.Fatalf("parsed link wrong: %+v", cfg.Link)
	}

	if cfg, err := ParseSpec("near=-1"); err != nil || cfg.NearLines != -1 || cfg.Policy != PolicyLRU {
		t.Fatalf("minimal spec: cfg %+v err %v", cfg, err)
	}
	for _, bad := range []string{
		"", "policy=lru", "near=x", "near=4,policy=mru", "near=4,pin=7",
		"near=4,pin=7@70", "near=4,bw=0", "near=4,lat=-1", "near=4,zap=1", "near=4,near",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted a bad spec", bad)
		}
	}
}

// TestConfigValidate pins the config error paths.
func TestConfigValidate(t *testing.T) {
	if err := (Config{Policy: "mru"}).Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := (Config{PinShift: 64}).Validate(); err == nil {
		t.Fatal("pin shift 64 accepted")
	}
	if err := (Config{Link: LinkModel{FarLatencyNs: -1}}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	if _, err := NewMemory(Config{Policy: "bogus"}, newFar(t, 1)); err == nil {
		t.Fatal("NewMemory accepted an invalid config")
	}
}
