package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(10)
	if c.Value() != 11 {
		t.Fatalf("counter = %d, want 11", c.Value())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	for i := 0; i < 10; i++ {
		r.Observe(i < 7)
	}
	if r.Value() != 0.7 {
		t.Fatalf("ratio = %v, want 0.7", r.Value())
	}
	if r.Hits() != 7 || r.Total() != 10 {
		t.Fatalf("hits/total = %d/%d", r.Hits(), r.Total())
	}
}

func TestMean(t *testing.T) {
	var m Mean
	for _, v := range []float64{2, 4, 6} {
		m.Observe(v)
	}
	if m.Value() != 4 {
		t.Fatalf("mean = %v, want 4", m.Value())
	}
	if m.Min() != 2 || m.Max() != 6 {
		t.Fatalf("min/max = %v/%v", m.Min(), m.Max())
	}
	if m.N() != 3 {
		t.Fatalf("n = %d", m.N())
	}
}

func TestMeanNegativeValues(t *testing.T) {
	var m Mean
	m.Observe(-5)
	m.Observe(5)
	if m.Min() != -5 || m.Max() != 5 || m.Value() != 0 {
		t.Fatalf("min/max/mean = %v/%v/%v", m.Min(), m.Max(), m.Value())
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(10, 10)
	for _, v := range []float64{5, 15, 15, 95, 200} {
		h.Observe(v)
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 2 || h.Bucket(9) != 1 {
		t.Fatalf("bucket counts wrong: %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(9))
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow())
	}
	if h.N() != 5 {
		t.Fatalf("n = %d", h.N())
	}
	if math.Abs(h.Mean()-66) > 1e-9 {
		t.Fatalf("mean = %v, want 66", h.Mean())
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1, 100)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Percentile(50)
	if p50 < 48 || p50 > 52 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 97 || p99 > 100 {
		t.Fatalf("p99 = %v, want ~99", p99)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(1, 4)
	h.Observe(-3)
	if h.Bucket(0) != 1 {
		t.Fatal("negative sample should clamp to bucket 0")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		w float64
		n int
	}{{0, 4}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%d) did not panic", tc.w, tc.n)
				}
			}()
			NewHistogram(tc.w, tc.n)
		}()
	}
}

func TestTableMeansAndRender(t *testing.T) {
	tb := NewTable("test", "a", "b")
	tb.AddRow("x", 1, 10)
	tb.AddRow("y", 3, 30)
	if tb.ColumnMean(0) != 2 || tb.ColumnMean(1) != 20 {
		t.Fatalf("column means wrong: %v %v", tb.ColumnMean(0), tb.ColumnMean(1))
	}
	tb.AddMeanRow()
	if tb.Rows() != 3 || tb.RowLabel(2) != "mean" {
		t.Fatalf("mean row missing")
	}
	if tb.Cell(2, 1) != 20 {
		t.Fatalf("mean cell = %v", tb.Cell(2, 1))
	}
	s := tb.String()
	if !strings.Contains(s, "== test ==") || !strings.Contains(s, "mean") {
		t.Fatalf("render missing pieces:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", 1.5, 2)
	csv := tb.CSV()
	want := "benchmark,a,b\nx;y,1.5,2\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestTablePanicsOnCellMismatch(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong cell count")
		}
	}()
	tb.AddRow("x", 1)
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("geomean = %v, want 10", got)
	}
	if GeoMean([]float64{-1, 0}) != 0 {
		t.Fatal("geomean of non-positive should be 0")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}

// Property: ratio value is always within [0, 1].
func TestRatioBoundsProperty(t *testing.T) {
	f := func(obs []bool) bool {
		var r Ratio
		for _, o := range obs {
			r.Observe(o)
		}
		v := r.Value()
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram never loses samples (buckets + overflow == N).
func TestHistogramConservationProperty(t *testing.T) {
	f := func(samples []float64) bool {
		h := NewHistogram(5, 8)
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			h.Observe(s)
		}
		var total uint64
		for i := 0; i < 8; i++ {
			total += h.Bucket(i)
		}
		return total+h.Overflow() == h.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterDec(t *testing.T) {
	var c Counter
	c.Add(2)
	c.Dec()
	if c.Value() != 1 {
		t.Fatalf("value = %d, want 1", c.Value())
	}
	c.Dec()
	defer func() {
		if recover() == nil {
			t.Fatal("decrementing zero should panic")
		}
	}()
	c.Dec()
}
