// Package stats provides the counters, histograms, and derived-metric
// helpers used by every component of the Attaché simulator, plus small
// table-formatting utilities for the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is an event counter. Most uses only grow it; Dec exists for
// the few gauges (e.g. currently-compressed line counts) that shrink.
type Counter struct {
	n uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Dec decrements the counter by one; decrementing zero panics, since a
// negative count always indicates an accounting bug.
func (c *Counter) Dec() {
	if c.n == 0 {
		panic("stats: counter underflow")
	}
	c.n--
}

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Restore sets the counter to an absolute value — the snapshot/restore
// path, where a rebuilt component resumes from serialized counters.
func (c *Counter) Restore(v uint64) { c.n = v }

// Ratio is a hit/total style ratio tracker.
type Ratio struct {
	hits  uint64
	total uint64
}

// Observe records one observation; hit marks it as a success.
func (r *Ratio) Observe(hit bool) {
	r.total++
	if hit {
		r.hits++
	}
}

// Hits reports the number of successful observations.
func (r *Ratio) Hits() uint64 { return r.hits }

// Total reports the number of observations.
func (r *Ratio) Total() uint64 { return r.total }

// Restore sets the ratio to absolute hit/total counts — the
// snapshot/restore path. hits above total is clamped, since a ratio
// above 1 always indicates a corrupt snapshot.
func (r *Ratio) Restore(hits, total uint64) {
	if hits > total {
		hits = total
	}
	r.hits, r.total = hits, total
}

// Value reports hits/total, or 0 when nothing was observed.
func (r *Ratio) Value() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.total)
}

// Mean tracks a running mean and extrema without storing samples.
type Mean struct {
	n    uint64
	sum  float64
	min  float64
	max  float64
	init bool
}

// Observe records one sample.
func (m *Mean) Observe(v float64) {
	m.n++
	m.sum += v
	if !m.init || v < m.min {
		m.min = v
	}
	if !m.init || v > m.max {
		m.max = v
	}
	m.init = true
}

// N reports the number of samples.
func (m *Mean) N() uint64 { return m.n }

// Sum reports the sum of all samples.
func (m *Mean) Sum() float64 { return m.sum }

// Value reports the arithmetic mean, or 0 with no samples.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Min reports the smallest sample, or 0 with no samples.
func (m *Mean) Min() float64 { return m.min }

// Max reports the largest sample, or 0 with no samples.
func (m *Mean) Max() float64 { return m.max }

// Histogram is a fixed-bucket linear histogram with overflow.
type Histogram struct {
	bucketWidth float64
	buckets     []uint64
	overflow    uint64
	n           uint64
	sum         float64
}

// NewHistogram creates a histogram with nBuckets linear buckets of the
// given width starting at zero; samples past the last bucket land in an
// overflow bucket.
func NewHistogram(bucketWidth float64, nBuckets int) *Histogram {
	if bucketWidth <= 0 {
		panic("stats: bucket width must be positive")
	}
	if nBuckets <= 0 {
		panic("stats: need at least one bucket")
	}
	return &Histogram{bucketWidth: bucketWidth, buckets: make([]uint64, nBuckets)}
}

// Observe records one sample. Negative samples clamp into the first bucket.
func (h *Histogram) Observe(v float64) {
	h.n++
	h.sum += v
	if v < 0 {
		h.buckets[0]++
		return
	}
	if v >= h.bucketWidth*float64(len(h.buckets)) {
		h.overflow++
		return
	}
	h.buckets[int(v/h.bucketWidth)]++
}

// N reports the number of samples.
func (h *Histogram) N() uint64 { return h.n }

// Mean reports the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Percentile reports an approximate percentile (0 < p <= 100) using the
// bucket midpoints. Overflow samples report the overflow boundary.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return (float64(i) + 0.5) * h.bucketWidth
		}
	}
	return float64(len(h.buckets)) * h.bucketWidth
}

// Bucket reports the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Overflow reports the number of samples beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Table accumulates labelled rows of float columns and renders them as an
// aligned text table; the experiment harness uses it to print the same
// rows/series the paper reports.
type Table struct {
	Title   string
	Columns []string
	rows    []tableRow
}

type tableRow struct {
	label string
	cells []float64
}

// NewTable creates a table with the given title and column headers (the
// first column is always the row label).
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a labelled row. The number of cells must match the number
// of columns.
func (t *Table) AddRow(label string, cells ...float64) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row %q has %d cells, table has %d columns", label, len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, tableRow{label: label, cells: cells})
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell reports the value at (row, col).
func (t *Table) Cell(row, col int) float64 { return t.rows[row].cells[col] }

// RowLabel reports the label of row i.
func (t *Table) RowLabel(i int) string { return t.rows[i].label }

// ColumnMean reports the geometric-free arithmetic mean of column col
// across all rows (paper averages are arithmetic over benchmarks).
func (t *Table) ColumnMean(col int) float64 {
	if len(t.rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range t.rows {
		sum += r.cells[col]
	}
	return sum / float64(len(t.rows))
}

// AddMeanRow appends a row labelled "mean" holding each column's mean of
// the rows added so far.
func (t *Table) AddMeanRow() {
	cells := make([]float64, len(t.Columns))
	for c := range t.Columns {
		cells[c] = t.ColumnMean(c)
	}
	t.AddRow("mean", cells...)
}

// String renders the table with aligned columns and 3-decimal cells.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	labelW := len("benchmark")
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
		if colW[i] < 9 {
			colW[i] = 9
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW, "benchmark")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", colW[i], c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", labelW, r.label)
		for i, v := range r.cells {
			fmt.Fprintf(&b, "  %*.3f", colW[i], v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row, for
// piping experiment output into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.ReplaceAll(r.label, ",", ";"))
		for _, v := range r.cells {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMean computes the geometric mean of vs, ignoring non-positive values.
func GeoMean(vs []float64) float64 {
	var logSum float64
	var n int
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// SortedKeys returns the keys of m in sorted order; the experiment harness
// uses it for deterministic iteration.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
