package scramble

import (
	"bytes"
	"testing"
)

// FuzzScrambleInvolution asserts the scrambler's defining property over
// arbitrary keys, addresses, and data: applying the transform twice is
// the identity (one unit serves as both scrambler and descrambler), and
// Scrambled never mutates its input.
func FuzzScrambleInvolution(f *testing.F) {
	f.Add(uint64(0), uint64(0), []byte{})
	f.Add(uint64(0xFEEDFACE), uint64(1<<40), make([]byte, 64))
	f.Add(uint64(1), uint64(7), []byte{1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, key, addr uint64, data []byte) {
		s := New(key)
		orig := append([]byte(nil), data...)

		s.Apply(addr, data)
		s.Apply(addr, data)
		if !bytes.Equal(data, orig) {
			t.Fatal("Apply twice is not the identity")
		}

		out := s.Scrambled(addr, data)
		if !bytes.Equal(data, orig) {
			t.Fatal("Scrambled mutated its input")
		}
		s.Apply(addr, out)
		if !bytes.Equal(out, orig) {
			t.Fatal("Scrambled+Apply did not descramble")
		}

		// The keystream is address-seeded: the same data at another
		// address must scramble differently (8+ bytes make a keystream
		// clash astronomically unlikely, and the fuzz corpus would pin
		// any counterexample permanently).
		if len(orig) >= 8 {
			other := s.Scrambled(addr+1, orig)
			self := s.Scrambled(addr, orig)
			if bytes.Equal(other, self) {
				t.Fatal("keystream ignores the address")
			}
		}
	})
}
