// Package scramble models the data Scrambling-Descrambling unit found in
// modern memory controllers (paper §IV-B). Scrambling XORs stored data with
// an address-seeded pseudo-random keystream so that the bits on the DRAM
// bus appear random regardless of content — the property that gives BLEM's
// 15-bit CID its 2^-15 collision probability even for adversarial data
// (e.g. all-zero lines whose top bits would otherwise never vary).
//
// The transform is an involution: applying it twice with the same key and
// address recovers the original bytes, so one function serves as both
// scrambler and descrambler.
package scramble

// Scrambler generates a per-address keystream from a boot-time key. The
// paper's scramblers "choose hashes with memory block address as an input"
// so identical data written to different blocks still looks different
// (footnote 3).
type Scrambler struct {
	key uint64
}

// New returns a scrambler for the given boot-time key.
func New(key uint64) *Scrambler { return &Scrambler{key: key} }

// splitmix64 is the keystream generator: a full-period 64-bit mixer with
// good avalanche behaviour, small enough to be plausible controller
// hardware.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// keyword returns the i-th 8-byte keystream word for a block address.
func (s *Scrambler) keyword(addr uint64, i int) uint64 {
	return splitmix64(s.key ^ splitmix64(addr+uint64(i)*0xA24BAED4963EE407))
}

// Apply XORs data in place with the keystream for the given block address.
// Byte k of the stream comes from keystream word k/8. Because XOR is its
// own inverse, Apply both scrambles and descrambles.
func (s *Scrambler) Apply(addr uint64, data []byte) {
	for i := 0; i < len(data); i += 8 {
		w := s.keyword(addr, i/8)
		n := len(data) - i
		if n > 8 {
			n = 8
		}
		for j := 0; j < n; j++ {
			data[i+j] ^= byte(w >> uint(8*j))
		}
	}
}

// Scrambled returns a scrambled copy of data, leaving the input intact.
func (s *Scrambler) Scrambled(addr uint64, data []byte) []byte {
	out := append([]byte(nil), data...)
	s.Apply(addr, out)
	return out
}
