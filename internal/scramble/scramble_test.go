package scramble

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestApplyIsInvolution(t *testing.T) {
	s := New(0xC0FFEE)
	data := []byte("sixty-four bytes of fairly compressible test data goes here!!!!")
	orig := append([]byte(nil), data...)
	s.Apply(42, data)
	if bytes.Equal(data, orig) {
		t.Fatal("scrambling left data unchanged")
	}
	s.Apply(42, data)
	if !bytes.Equal(data, orig) {
		t.Fatal("double scramble did not restore data")
	}
}

func TestScrambledDoesNotMutateInput(t *testing.T) {
	s := New(1)
	in := make([]byte, 64)
	out := s.Scrambled(7, in)
	if !bytes.Equal(in, make([]byte, 64)) {
		t.Fatal("input mutated")
	}
	if bytes.Equal(out, in) {
		t.Fatal("output not scrambled")
	}
}

func TestDifferentAddressesDifferentStreams(t *testing.T) {
	s := New(99)
	a := s.Scrambled(1, make([]byte, 64))
	b := s.Scrambled(2, make([]byte, 64))
	if bytes.Equal(a, b) {
		t.Fatal("same keystream for different addresses")
	}
}

func TestDifferentKeysDifferentStreams(t *testing.T) {
	a := New(1).Scrambled(5, make([]byte, 64))
	b := New(2).Scrambled(5, make([]byte, 64))
	if bytes.Equal(a, b) {
		t.Fatal("same keystream for different keys")
	}
}

func TestShortAndOddLengths(t *testing.T) {
	s := New(5)
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 30, 31, 63} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i)
		}
		orig := append([]byte(nil), data...)
		s.Apply(11, data)
		s.Apply(11, data)
		if !bytes.Equal(data, orig) {
			t.Fatalf("length %d: involution failed", n)
		}
	}
}

// TestPrefixConsistency: the keystream for a block's first N bytes must not
// depend on how many bytes are scrambled — BLEM scrambles variable-length
// compressed payloads but classifies lines by their first two bytes.
func TestPrefixConsistency(t *testing.T) {
	s := New(123)
	full := s.Scrambled(9, make([]byte, 64))
	short := s.Scrambled(9, make([]byte, 16))
	if !bytes.Equal(full[:16], short) {
		t.Fatal("keystream prefix differs with payload length")
	}
}

// TestTopBitsUniform verifies the statistical property BLEM relies on: the
// top 15 bits of scrambled all-zero lines are uniformly distributed, so a
// CID collision happens with probability ~2^-15 per line.
func TestTopBitsUniform(t *testing.T) {
	s := New(0xABCDEF)
	const trials = 1 << 20
	var buckets [16]int // bucket by top 4 bits as a cheap uniformity proxy
	matches := 0
	const cid = 0x1234 >> 1 // arbitrary 15-bit value
	for addr := uint64(0); addr < trials; addr++ {
		data := make([]byte, 2)
		s.Apply(addr, data)
		top15 := uint16(data[0])<<7 | uint16(data[1])>>1
		buckets[top15>>11]++
		if top15 == cid {
			matches++
		}
	}
	want := float64(trials) / (1 << 15) // 32 expected matches
	if float64(matches) < want/4 || float64(matches) > want*4 {
		t.Fatalf("CID matches = %d, want ~%.0f", matches, want)
	}
	exp := float64(trials) / 16
	for i, b := range buckets {
		if math.Abs(float64(b)-exp) > exp*0.05 {
			t.Fatalf("bucket %d = %d, want ~%.0f (top bits not uniform)", i, b, exp)
		}
	}
}

// TestBitFlipAvalanche: flipping one address bit should change roughly half
// the keystream bits.
func TestBitFlipAvalanche(t *testing.T) {
	s := New(77)
	a := s.Scrambled(0x1000, make([]byte, 64))
	b := s.Scrambled(0x1001, make([]byte, 64))
	diff := 0
	for i := range a {
		x := a[i] ^ b[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff < 64*8*3/10 || diff > 64*8*7/10 {
		t.Fatalf("avalanche diff = %d bits of %d, want ~half", diff, 64*8)
	}
}

// Property: involution holds for arbitrary data, key, and address.
func TestInvolutionProperty(t *testing.T) {
	f := func(key, addr uint64, data []byte) bool {
		s := New(key)
		orig := append([]byte(nil), data...)
		s.Apply(addr, data)
		s.Apply(addr, data)
		return bytes.Equal(data, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
