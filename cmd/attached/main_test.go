package main

import (
	"os"
	"path/filepath"
	"testing"

	"attache/internal/cluster"
	"attache/internal/core"
	"attache/internal/shard"
)

func TestParseQuota(t *testing.T) {
	q, err := parseQuota("5000")
	if err != nil || q != (cluster.Quota{Rate: 5000}) {
		t.Fatalf("parseQuota(5000) = %+v, %v", q, err)
	}
	q, err = parseQuota("1000:2000")
	if err != nil || q != (cluster.Quota{Rate: 1000, Burst: 2000}) {
		t.Fatalf("parseQuota(1000:2000) = %+v, %v", q, err)
	}
	for _, bad := range []string{"", "fast", "-5", "100:-1", "100:nope"} {
		if _, err := parseQuota(bad); err == nil {
			t.Errorf("parseQuota(%q) accepted", bad)
		}
	}
}

func TestParseQuotas(t *testing.T) {
	qs, err := parseQuotas("hog=1000:2000, vip=50")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs["hog"] != (cluster.Quota{Rate: 1000, Burst: 2000}) || qs["vip"] != (cluster.Quota{Rate: 50}) {
		t.Fatalf("parseQuotas = %+v", qs)
	}
	if qs, err := parseQuotas(""); err != nil || qs != nil {
		t.Fatalf("empty spec = %+v, %v, want nil map", qs, err)
	}
	for _, bad := range []string{"hog", "=100", "hog=oops", "hog=1,=2"} {
		if _, err := parseQuotas(bad); err == nil {
			t.Errorf("parseQuotas(%q) accepted", bad)
		}
	}
}

func TestParseClasses(t *testing.T) {
	cs, err := parseClasses("vip=gold, batch=best-effort, mid=silver")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 || cs["vip"] != cluster.ClassGold || cs["batch"] != cluster.ClassBestEffort || cs["mid"] != cluster.ClassSilver {
		t.Fatalf("parseClasses = %+v", cs)
	}
	if cs, err := parseClasses(""); err != nil || cs != nil {
		t.Fatalf("empty spec = %+v, %v, want nil map", cs, err)
	}
	for _, bad := range []string{"vip", "=gold", "vip=platinum"} {
		if _, err := parseClasses(bad); err == nil {
			t.Errorf("parseClasses(%q) accepted", bad)
		}
	}
}

// TestWriteSnapshotFile: the drain snapshot lands atomically (no .tmp
// residue) and restores, and a doomed path fails without side effects.
func TestWriteSnapshotFile(t *testing.T) {
	cl, err := cluster.New(core.DefaultOptions(), shard.Config{Shards: 2}, 1, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	line := make([]byte, core.LineSize)
	if err := cl.Write(1, line); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "drain.snap")
	if err := writeSnapshotFile(cl, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	re, err := cluster.RestoreFrom(f, shard.Config{}, cluster.Config{})
	if err != nil {
		t.Fatalf("written snapshot does not restore: %v", err)
	}
	re.Close()

	if err := writeSnapshotFile(cl, filepath.Join(t.TempDir(), "missing", "x.snap")); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
