// Command attached serves an Attaché sharded compressed-memory engine
// over HTTP: line reads/writes, multi-op batches, a stats snapshot, a
// liveness probe, and Prometheus metrics.
//
//	go run ./cmd/attached -addr :8080 -shards 8
//
//	curl -s localhost:8080/v1/write -d '{"addr":42,"data":"'"$(head -c64 /dev/zero | base64)"'"}'
//	curl -s localhost:8080/v1/read  -d '{"addr":42}'
//	curl -s localhost:8080/v1/batch -d '{"op":"read","addr":42}
//	{"op":"write","addr":43,"data":"..."}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//
// Observability: logs are structured (log/slog, level set by
// -log-level); -trace-sample samples that fraction of requests into the
// trace ring, browsable at /v1/trace and /v1/trace/{id} (clients opt in
// per request with an X-Attache-Trace header); /debug/pprof/* is
// mounted unless -pprof=false; per-shard queue-depth gauges are polled
// every -gauge-interval and exported at /metrics and /v1/stats.
//
// Record/replay: -record captures every op the data endpoints offer to
// the engine as a versioned NDJSON trace (tracev1) — in submission
// order, before admission, payloads included — so one live session can
// be replayed later, byte-deterministically, as a regression workload:
//
//	go run ./cmd/attached -record capture.ndjson
//	... traffic ...
//	go run ./cmd/attacheload -replay capture.ndjson
//
// Cluster mode: -cluster N runs N engine instances behind a router
// (-router round-robin | least-loaded | affinity) with per-tenant
// token-bucket admission (-quotas "acme=5000,globex=1000:2000",
// -default-quota) and SLO classes (-classes "acme=gold"). Clients name
// their tenant in the X-Attache-Tenant header; /v1/stats (schema v2)
// reports per-instance, per-class, and per-tenant breakdowns plus a
// Jain fairness index. The default -cluster 1 with the passthrough
// router is bit-identical to the pre-cluster daemon.
//
// SIGTERM/SIGINT starts a graceful drain: the listener stops accepting,
// in-flight requests finish (bounded by -shutdown-timeout), the engine's
// pipelines drain, and the daemon logs a final stats snapshot.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"attache"
	"attache/internal/cluster"
	"attache/internal/obs"
	"attache/internal/serve"
	"attache/internal/shard"
	"attache/internal/tier"
	"attache/internal/workload"
)

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		shards          = flag.Int("shards", runtime.GOMAXPROCS(0), "shard count (independent Memory pools)")
		queueDepth      = flag.Int("queue-depth", 64, "per-shard request queue depth")
		maxLines        = flag.Uint64("max-lines", 0, "line-address capacity (0 = unbounded)")
		cidBits         = flag.Int("cid-bits", attache.DefaultOptions().CIDBits, "Compression ID width in bits [1,15]")
		seed            = flag.Int64("seed", attache.DefaultOptions().Seed, "CID/scrambler seed")
		noPredictor     = flag.Bool("no-predictor", false, "disable COPR (conservative two-block reads)")
		extended        = flag.Bool("extended", false, "enable the CPack extended compression engine")
		readTimeout     = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout    = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		idleTimeout     = flag.Duration("idle-timeout", 120*time.Second, "HTTP keep-alive idle timeout")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "max time to drain on SIGTERM")
		maxBatch        = flag.Int("max-batch", 4096, "max ops per /v1/batch request")
		retryAfter      = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429 responses")
		record          = flag.String("record", "", "capture offered ops to this tracev1 NDJSON file for later -replay")

		// Tiered-memory + snapshot knobs. -tiers puts a near (uncompressed)
		// tier in front of each shard's compressed memory, modeling a
		// DRAM-over-CXL split; -snapshot-on-drain and -restore round-trip
		// the full engine state (memory contents, predictor state, tier
		// residency) through a snapv1 image so a restart is behaviorally
		// seamless.
		tiers           = flag.String("tiers", "", `two-tier backend spec, "near=LINES[,policy=lru|freq|static][,freq-threshold=N][,freq-decay=N][,pin=PREFIX@SHIFT][,lat=NS][,bw=MULT][,near-energy=PJ][,far-energy=PJ]" (near=-1 = unbounded)`)
		snapshotOnDrain = flag.String("snapshot-on-drain", "", "write a snapv1 state snapshot to this path after the drain completes")
		restore         = flag.String("restore", "", "restore engine state from this snapv1 snapshot at startup (snapshot is authoritative for options, tier config, shard and instance count)")

		// Cluster knobs: N engine instances behind a router, per-tenant
		// admission quotas, and SLO classes. The default (1 instance,
		// passthrough) is bit-identical to the pre-cluster daemon.
		instances    = flag.Int("cluster", 1, "engine instance count behind the router")
		router       = flag.String("router", "", "routing policy: passthrough, round-robin, least-loaded, affinity (default: passthrough for 1 instance, round-robin otherwise)")
		quotas       = flag.String("quotas", "", `per-tenant admission quotas, "tenant=rate[:burst],..." in ops/sec (e.g. "acme=5000,globex=1000:2000")`)
		defaultQuota = flag.String("default-quota", "", `quota shape for tenants without an explicit one, "rate[:burst]" (empty = unlimited)`)
		classes      = flag.String("classes", "", `per-tenant SLO classes, "tenant=class,..." with class gold|silver|best-effort (unmapped tenants are best-effort)`)

		// Observability knobs.
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn, error (access logs for 2xx log at debug)")
		traceSample   = flag.Float64("trace-sample", 0, "fraction of requests to trace [0,1]; explicit X-Attache-Trace requests are always traced")
		traceRing     = flag.Int("trace-ring", 1024, "completed traces retained for /v1/trace lookup")
		pprof         = flag.Bool("pprof", true, "mount /debug/pprof/*")
		gaugeInterval = flag.Duration("gauge-interval", 10*time.Second, "queue-depth gauge polling period")

		// Chaos knobs: seeded fault injection on the shard pipelines, for
		// resilience testing with cmd/attacheload. All off by default.
		faultSeed     = flag.Int64("fault-seed", 1, "fault-injection seed")
		faultErr      = flag.Float64("fault-err", 0, "per-op injected-error probability [0,1]")
		faultDelay    = flag.Float64("fault-delay", 0, "per-op injected-delay probability [0,1]")
		faultDelayDur = flag.Duration("fault-delay-dur", 100*time.Microsecond, "injected delay duration")
		faultPartial  = flag.Float64("fault-partial", 0, "per-batch partial-failure probability [0,1]")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("attached: %v", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	observer := attache.NewObserver(attache.ObserverConfig{
		Logger:     logger,
		SampleRate: *traceSample,
		RingSize:   *traceRing,
	})

	opts := attache.DefaultOptions()
	opts.CIDBits = *cidBits
	opts.Seed = *seed
	opts.DisablePredictor = *noPredictor
	opts.ExtendedCompression = *extended
	shardCfg := shard.Config{
		Shards:     *shards,
		QueueDepth: *queueDepth,
		MaxLines:   *maxLines,
		Faults: attache.FaultPlan{
			Seed:     *faultSeed,
			ErrP:     *faultErr,
			DelayP:   *faultDelay,
			Delay:    *faultDelayDur,
			PartialP: *faultPartial,
		},
		Obs: observer,
	}
	quotaMap, err := parseQuotas(*quotas)
	if err != nil {
		log.Fatalf("attached: -quotas: %v", err)
	}
	var fallback cluster.Quota
	if *defaultQuota != "" {
		if fallback, err = parseQuota(*defaultQuota); err != nil {
			log.Fatalf("attached: -default-quota: %v", err)
		}
	}
	classMap, err := parseClasses(*classes)
	if err != nil {
		log.Fatalf("attached: -classes: %v", err)
	}
	if *tiers != "" {
		tc, err := tier.ParseSpec(*tiers)
		if err != nil {
			log.Fatalf("attached: -tiers: %v", err)
		}
		shardCfg.Tier = tc
	}
	clusterCfg := cluster.Config{
		Router:       *router,
		Quotas:       quotaMap,
		DefaultQuota: fallback,
		Classes:      classMap,
	}
	var cl *cluster.Cluster
	if *restore != "" {
		if *tiers != "" {
			log.Fatalf("attached: -restore and -tiers are mutually exclusive (the snapshot carries the tier configuration)")
		}
		// The snapshot is authoritative for shard and instance count;
		// -shards and -cluster are ignored on restore.
		shardCfg.Shards = 0
		f, err := os.Open(*restore)
		if err != nil {
			log.Fatalf("attached: -restore: %v", err)
		}
		cl, err = cluster.RestoreFrom(f, shardCfg, clusterCfg)
		f.Close()
		if err != nil {
			log.Fatalf("attached: -restore %s: %v", *restore, err)
		}
		logger.Info("restored", "path", *restore, "instances", cl.Instances(), "shards", cl.Shards())
	} else {
		cl, err = cluster.New(opts, shardCfg, *instances, clusterCfg)
		if err != nil {
			log.Fatalf("attached: %v", err)
		}
	}

	var recorder *workload.TraceWriter
	var recordFile *os.File
	if *record != "" {
		recordFile, err = os.Create(*record)
		if err != nil {
			log.Fatalf("attached: -record: %v", err)
		}
		recorder = workload.NewTraceWriter(recordFile)
	}

	cfg := serve.Config{
		Addr:            *addr,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		IdleTimeout:     *idleTimeout,
		ShutdownTimeout: *shutdownTimeout,
		MaxBatchOps:     *maxBatch,
		RetryAfter:      *retryAfter,
		Obs:             observer,
		EnablePprof:     *pprof,
		GaugeInterval:   *gaugeInterval,
	}
	if recorder != nil {
		cfg.Record = recorder
	}
	srv := serve.NewCluster(cl, cfg)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	go func() {
		<-srv.Ready()
		logger.Info("serving",
			"addr", srv.Addr(), "instances", cl.Instances(), "router", cl.RouterName(),
			"shards", cl.Shards(), "queue_depth", *queueDepth,
			"sram_overhead_kb", cl.EngineSnapshot().SRAMBytes>>10,
			"trace_sample", *traceSample, "pprof", *pprof)
	}()
	err = srv.ListenAndServe(ctx)

	if recorder != nil {
		if ferr := recorder.Flush(); ferr != nil {
			logger.Warn("record capture incomplete", "path", *record, "err", ferr)
		}
		if cerr := recordFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		logger.Info("capture written", "path", *record, "events", recorder.Events())
	}

	if *snapshotOnDrain != "" {
		// The engine is closed (drained) here, so the export is a final,
		// globally exact image. Write-then-rename so a crash mid-write
		// never leaves a truncated snapshot at the target path.
		if werr := writeSnapshotFile(cl, *snapshotOnDrain); werr != nil {
			logger.Warn("snapshot-on-drain failed", "path", *snapshotOnDrain, "err", werr)
			if err == nil {
				err = werr
			}
		} else {
			logger.Info("snapshot written", "path", *snapshotOnDrain)
		}
	}

	snap := cl.EngineSnapshot().Total
	logger.Info("drained",
		"reads", snap.Reads, "writes", snap.Writes, "lines", snap.Lines,
		"compressed_ratio", snap.CompressedLineRatio(),
		"bandwidth_saved", snap.BandwidthSavings(),
		"copr_accuracy", snap.PredictionAccuracy,
		"jain_fairness", cl.JainFairness())
	if err != nil {
		log.Fatalf("attached: %v", err)
	}
}

// writeSnapshotFile writes the cluster's snapv1 image to path via a
// same-directory temp file and an atomic rename.
func writeSnapshotFile(cl *cluster.Cluster, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := cl.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// parseQuota parses "rate[:burst]" into a Quota, e.g. "5000" or
// "1000:2000".
func parseQuota(s string) (cluster.Quota, error) {
	rateStr, burstStr, hasBurst := strings.Cut(s, ":")
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate < 0 {
		return cluster.Quota{}, fmt.Errorf("bad rate %q (want ops/sec)", rateStr)
	}
	q := cluster.Quota{Rate: rate}
	if hasBurst {
		burst, err := strconv.ParseFloat(burstStr, 64)
		if err != nil || burst < 0 {
			return cluster.Quota{}, fmt.Errorf("bad burst %q (want ops)", burstStr)
		}
		q.Burst = burst
	}
	return q, nil
}

// parseQuotas parses "tenant=rate[:burst],..." into per-tenant quotas.
func parseQuotas(s string) (map[string]cluster.Quota, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]cluster.Quota)
	for _, part := range strings.Split(s, ",") {
		tenant, spec, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("bad entry %q (want tenant=rate[:burst])", part)
		}
		q, err := parseQuota(spec)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %w", tenant, err)
		}
		out[tenant] = q
	}
	return out, nil
}

// parseClasses parses "tenant=class,..." into per-tenant SLO classes.
func parseClasses(s string) (map[string]cluster.Class, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]cluster.Class)
	for _, part := range strings.Split(s, ",") {
		tenant, class, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("bad entry %q (want tenant=class)", part)
		}
		switch c := cluster.Class(class); c {
		case cluster.ClassGold, cluster.ClassSilver, cluster.ClassBestEffort:
			out[tenant] = c
		default:
			return nil, fmt.Errorf("tenant %q: unknown class %q (want gold, silver, or best-effort)", tenant, class)
		}
	}
	return out, nil
}
