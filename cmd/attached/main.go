// Command attached serves an Attaché sharded compressed-memory engine
// over HTTP: line reads/writes, multi-op batches, a stats snapshot, a
// liveness probe, and Prometheus metrics.
//
//	go run ./cmd/attached -addr :8080 -shards 8
//
//	curl -s localhost:8080/v1/write -d '{"addr":42,"data":"'"$(head -c64 /dev/zero | base64)"'"}'
//	curl -s localhost:8080/v1/read  -d '{"addr":42}'
//	curl -s localhost:8080/v1/batch -d '{"op":"read","addr":42}
//	{"op":"write","addr":43,"data":"..."}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//
// Observability: logs are structured (log/slog, level set by
// -log-level); -trace-sample samples that fraction of requests into the
// trace ring, browsable at /v1/trace and /v1/trace/{id} (clients opt in
// per request with an X-Attache-Trace header); /debug/pprof/* is
// mounted unless -pprof=false; per-shard queue-depth gauges are polled
// every -gauge-interval and exported at /metrics and /v1/stats.
//
// Record/replay: -record captures every op the data endpoints offer to
// the engine as a versioned NDJSON trace (tracev1) — in submission
// order, before admission, payloads included — so one live session can
// be replayed later, byte-deterministically, as a regression workload:
//
//	go run ./cmd/attached -record capture.ndjson
//	... traffic ...
//	go run ./cmd/attacheload -replay capture.ndjson
//
// SIGTERM/SIGINT starts a graceful drain: the listener stops accepting,
// in-flight requests finish (bounded by -shutdown-timeout), the engine's
// pipelines drain, and the daemon logs a final stats snapshot.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"attache"
	"attache/internal/obs"
	"attache/internal/serve"
	"attache/internal/workload"
)

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		shards          = flag.Int("shards", runtime.GOMAXPROCS(0), "shard count (independent Memory pools)")
		queueDepth      = flag.Int("queue-depth", 64, "per-shard request queue depth")
		maxLines        = flag.Uint64("max-lines", 0, "line-address capacity (0 = unbounded)")
		cidBits         = flag.Int("cid-bits", attache.DefaultOptions().CIDBits, "Compression ID width in bits [1,15]")
		seed            = flag.Int64("seed", attache.DefaultOptions().Seed, "CID/scrambler seed")
		noPredictor     = flag.Bool("no-predictor", false, "disable COPR (conservative two-block reads)")
		extended        = flag.Bool("extended", false, "enable the CPack extended compression engine")
		readTimeout     = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout    = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		idleTimeout     = flag.Duration("idle-timeout", 120*time.Second, "HTTP keep-alive idle timeout")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "max time to drain on SIGTERM")
		maxBatch        = flag.Int("max-batch", 4096, "max ops per /v1/batch request")
		retryAfter      = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429 responses")
		record          = flag.String("record", "", "capture offered ops to this tracev1 NDJSON file for later -replay")

		// Observability knobs.
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn, error (access logs for 2xx log at debug)")
		traceSample   = flag.Float64("trace-sample", 0, "fraction of requests to trace [0,1]; explicit X-Attache-Trace requests are always traced")
		traceRing     = flag.Int("trace-ring", 1024, "completed traces retained for /v1/trace lookup")
		pprof         = flag.Bool("pprof", true, "mount /debug/pprof/*")
		gaugeInterval = flag.Duration("gauge-interval", 10*time.Second, "queue-depth gauge polling period")

		// Chaos knobs: seeded fault injection on the shard pipelines, for
		// resilience testing with cmd/attacheload. All off by default.
		faultSeed     = flag.Int64("fault-seed", 1, "fault-injection seed")
		faultErr      = flag.Float64("fault-err", 0, "per-op injected-error probability [0,1]")
		faultDelay    = flag.Float64("fault-delay", 0, "per-op injected-delay probability [0,1]")
		faultDelayDur = flag.Duration("fault-delay-dur", 100*time.Microsecond, "injected delay duration")
		faultPartial  = flag.Float64("fault-partial", 0, "per-batch partial-failure probability [0,1]")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("attached: %v", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	observer := attache.NewObserver(attache.ObserverConfig{
		Logger:     logger,
		SampleRate: *traceSample,
		RingSize:   *traceRing,
	})

	opts := []attache.Option{
		attache.WithCIDWidth(*cidBits),
		attache.WithSeed(*seed),
		attache.WithShards(*shards),
		attache.WithQueueDepth(*queueDepth),
		attache.WithMaxLines(*maxLines),
		attache.WithFaultPlan(attache.FaultPlan{
			Seed:     *faultSeed,
			ErrP:     *faultErr,
			DelayP:   *faultDelay,
			Delay:    *faultDelayDur,
			PartialP: *faultPartial,
		}),
		attache.WithObserver(observer),
	}
	if *noPredictor {
		opts = append(opts, attache.WithoutPredictor())
	}
	if *extended {
		opts = append(opts, attache.WithExtendedCompression())
	}
	eng, err := attache.NewEngine(opts...)
	if err != nil {
		log.Fatalf("attached: %v", err)
	}

	var recorder *workload.TraceWriter
	var recordFile *os.File
	if *record != "" {
		recordFile, err = os.Create(*record)
		if err != nil {
			log.Fatalf("attached: -record: %v", err)
		}
		recorder = workload.NewTraceWriter(recordFile)
	}

	cfg := serve.Config{
		Addr:            *addr,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		IdleTimeout:     *idleTimeout,
		ShutdownTimeout: *shutdownTimeout,
		MaxBatchOps:     *maxBatch,
		RetryAfter:      *retryAfter,
		Obs:             observer,
		EnablePprof:     *pprof,
		GaugeInterval:   *gaugeInterval,
	}
	if recorder != nil {
		cfg.Record = recorder
	}
	srv := serve.New(eng, cfg)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	go func() {
		<-srv.Ready()
		logger.Info("serving",
			"addr", srv.Addr(), "shards", eng.Shards(), "queue_depth", *queueDepth,
			"sram_overhead_kb", eng.StorageOverheadBytes()>>10,
			"trace_sample", *traceSample, "pprof", *pprof)
	}()
	err = srv.ListenAndServe(ctx)

	if recorder != nil {
		if ferr := recorder.Flush(); ferr != nil {
			logger.Warn("record capture incomplete", "path", *record, "err", ferr)
		}
		if cerr := recordFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		logger.Info("capture written", "path", *record, "events", recorder.Events())
	}

	snap := eng.StatsSnapshot().Total
	logger.Info("drained",
		"reads", snap.Reads, "writes", snap.Writes, "lines", snap.Lines,
		"compressed_ratio", snap.CompressedLineRatio(),
		"bandwidth_saved", snap.BandwidthSavings(),
		"copr_accuracy", snap.PredictionAccuracy)
	if err != nil {
		log.Fatalf("attached: %v", err)
	}
}
