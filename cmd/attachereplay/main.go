// Command attachereplay replays a recorded memory trace through the five
// memory-system organizations (baseline, metadata cache, ECC metadata,
// Attaché, ideal) and reports their relative performance — the
// bring-your-own-workload entry point to the simulator.
//
// Trace format (one access per line, '#' comments allowed):
//
//	R 0x7f001040 12     # read byte address 0x7f001040, 12 instrs after previous
//	W 104896            # write, default gap 1
//
// Since a trace records addresses but not data, the compressibility of
// the address space is modeled: -compressibility sets the fraction of
// lines that compress to <=30 bytes and -homogeneity how strongly that
// clusters by 4KB page.
//
//	attachereplay -trace mytrace.txt -compressibility 0.5 -homogeneity 0.8
package main

import (
	"flag"
	"fmt"
	"os"

	"attache/internal/config"
	"attache/internal/exp"
	"attache/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "path to the trace file (required)")
		comp      = flag.Float64("compressibility", 0.5, "fraction of lines compressible to <=30B")
		homog     = flag.Float64("homogeneity", 0.8, "probability a 4KB page is uniformly compressible")
		accesses  = flag.Int64("accesses", 12000, "memory references to simulate per core (trace loops)")
		seed      = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()
	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "attachereplay: %v\n", err)
		os.Exit(1)
	}
	ft, err := trace.ParseTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "attachereplay: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace: %s (%d accesses, looped to %d per core)\n\n", *tracePath, ft.Len(), *accesses)

	cfg := config.Default()
	// Every core replays its own copy of the trace (rate mode).
	lm := trace.NewDataModel(uint64(*seed), *comp, *homog)

	// Profiles are still needed for core count bookkeeping; the sources
	// and line model below override their content.
	dummy, err := trace.ByName("lbm")
	if err != nil {
		fmt.Fprintln(os.Stderr, "attachereplay:", err)
		os.Exit(1)
	}

	var baseCycles float64
	fmt.Printf("%-10s %12s %9s %12s %10s\n", "system", "cycles", "speedup", "bytes-moved", "latency")
	for _, kind := range []config.SystemKind{
		config.SystemBaseline, config.SystemMDCache, config.SystemECC,
		config.SystemAttache, config.SystemIdeal,
	} {
		sources := make([]trace.Source, cfg.CPU.Cores)
		for i := range sources {
			// Fresh replay per core and per system for determinism.
			g, err := os.Open(*tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "attachereplay:", err)
				os.Exit(1)
			}
			ftc, err := trace.ParseTrace(g)
			g.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "attachereplay:", err)
				os.Exit(1)
			}
			sources[i] = ftc
		}
		m, err := exp.Run(exp.RunConfig{
			Cfg:             cfg,
			Kind:            kind,
			Profiles:        exp.RateMode(dummy, cfg.CPU.Cores),
			AccessesPerCore: *accesses,
			Seed:            *seed,
			Sources:         sources,
			LineModel:       lm,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "attachereplay: %v run: %v\n", kind, err)
			os.Exit(1)
		}
		if kind == config.SystemBaseline {
			baseCycles = float64(m.Cycles)
		}
		fmt.Printf("%-10s %12d %8.3fx %12d %8.0fc\n",
			kind, m.Cycles, baseCycles/float64(m.Cycles), m.BytesMoved, m.AvgReadLatency)
	}
}
