// Command attachetwin drives the analytical twin (internal/twin): the
// closed-form model of the Attaché pipeline that predicts compression
// ratio, predictor accuracy, bandwidth savings, CID-collision
// occupancy, and tiered far-link traffic straight from a workload
// spec's moments — no simulation.
//
// Predict one point (microseconds, no engine):
//
//	go run ./cmd/attachetwin predict -scenario zipfian-hot-page
//	go run ./cmd/attachetwin predict -scenario tiered-hotset -tier-near 1024 -json
//
// Calibrate the twin against the simulator over the committed sweep
// (every preset scenario × engine configs) and check the committed
// tolerance bands — the same gate CI's twin-calibration job runs:
//
//	go run ./cmd/attachetwin calibrate
//	go run ./cmd/attachetwin calibrate -events 1200 -bands internal/twin/testdata/calibration.json
//
// calibrate exits 1 when any per-metric MAPE exceeds its band or any
// Pearson correlation drops below its floor.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"attache/internal/core"
	"attache/internal/tier"
	"attache/internal/twin"
	"attache/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "predict":
		err = runPredict(os.Args[2:])
	case "calibrate":
		err = runCalibrate(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "attachetwin: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "attachetwin:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  attachetwin predict   -scenario NAME [-events N] [-seed N] [-shards N] [-cid N]
                        [-no-predictor] [-papr-only] [-tier-near N] [-json]
  attachetwin calibrate [-events N] [-bands FILE] [-json]

scenarios: %v
`, workload.Names())
}

func buildConfig(shards, cid int, noPred, paprOnly bool, tierNear int64, tiered bool) twin.Config {
	cfg := twin.Config{Shards: shards, CIDBits: cid, DisablePredictor: noPred}
	if paprOnly {
		p := core.DefaultOptions().Predictor
		p.EnableLiPR = false
		cfg.Predictor = p
	}
	if tiered {
		cfg.Tier = &tier.Config{NearLines: tierNear}
	}
	return cfg
}

func runPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	scenario := fs.String("scenario", "", "preset scenario name (required)")
	events := fs.Int("events", 1200, "events per client")
	seed := fs.Int64("seed", 0x7717, "workload seed")
	shards := fs.Int("shards", 2, "engine shards (model is shard-invariant; recorded for parity)")
	cid := fs.Int("cid", 15, "CID width in bits [1,15]")
	noPred := fs.Bool("no-predictor", false, "model the BLEM-only engine")
	paprOnly := fs.Bool("papr-only", false, "disable LiPR (exercise the PaPR/GI accuracy regime)")
	tierNear := fs.Int64("tier-near", 0, "model a tiered lru backend with this near capacity in lines (0 = untiered)")
	asJSON := fs.Bool("json", false, "emit the prediction as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenario == "" {
		return fmt.Errorf("predict: -scenario is required (have %v)", workload.Names())
	}
	spec, err := workload.Preset(*scenario, *seed, *events)
	if err != nil {
		return err
	}
	cfg := buildConfig(*shards, *cid, *noPred, *paprOnly, *tierNear, *tierNear != 0)
	pred, err := twin.Evaluate(spec, cfg)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(pred)
	}
	fmt.Printf("scenario %s (seed %#x, %d events, cid %d)\n", *scenario, *seed, *events, *cid)
	fmt.Printf("  lines            %12.1f\n", pred.Lines)
	fmt.Printf("  compression      %12.4f\n", pred.CompressionRatio)
	fmt.Printf("  accuracy         %12.4f\n", pred.PredictorAccuracy)
	fmt.Printf("  bw savings       %12.4f\n", pred.BandwidthSavings)
	fmt.Printf("  reads/failed     %12.1f / %.1f\n", pred.Reads, pred.FailedReads)
	fmt.Printf("  writes           %12.1f\n", pred.Writes)
	fmt.Printf("  blocks r/w       %12.1f / %.1f\n", pred.BlocksRead, pred.BlocksWritten)
	fmt.Printf("  collisions       %12.2f\n", pred.Collisions)
	fmt.Printf("  ra occupancy     %12.2f\n", pred.RAOccupancy)
	if pred.Tier != nil {
		fmt.Printf("  near hit rate    %12.4f\n", pred.Tier.NearHitRate)
		fmt.Printf("  far reads/writes %12.1f / %.1f\n", pred.Tier.FarReads, pred.Tier.FarWrites)
		fmt.Printf("  far link bytes   %12.1f\n", pred.Tier.FarLinkBytes)
		fmt.Printf("  far latency ns   %12.1f\n", pred.Tier.FarLatencyNs)
	}
	cm := pred.CostModel()
	fmt.Printf("  op cost r/w      %12.4f / %.4f (router hook)\n", cm.OpCost(false), cm.OpCost(true))
	return nil
}

func runCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	events := fs.Int("events", 1200, "events per client in every sweep point")
	bandsPath := fs.String("bands", "", "committed bands file to enforce (exit 1 on violation)")
	asJSON := fs.Bool("json", false, "emit observations and summary as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	obs, err := twin.Calibrate(ctx, twin.DefaultSweep(*events))
	if err != nil {
		return err
	}
	sum := twin.Summarize(obs)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Observations []twin.Observation            `json:"observations"`
			Summary      map[string]twin.MetricSummary `json:"summary"`
		}{obs, sum}); err != nil {
			return err
		}
	} else {
		printCalibration(obs, sum)
	}
	if *bandsPath != "" {
		bands, err := twin.LoadBands(*bandsPath)
		if err != nil {
			return err
		}
		if errs := twin.CheckBands(sum, bands); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "calibration violation:", e)
			}
			return fmt.Errorf("%d calibration violation(s)", len(errs))
		}
		fmt.Printf("bands OK (%s)\n", *bandsPath)
	}
	return nil
}

func printCalibration(obs []twin.Observation, sum map[string]twin.MetricSummary) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "point\tmetric\ttwin\tsim\trel err")
	for _, o := range obs {
		names := make([]string, 0, len(o.Sim))
		for k := range o.Sim {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, name := range names {
			t, s := o.Twin[name], o.Sim[name]
			denom := s
			if denom < 0 {
				denom = -denom
			}
			if denom < 1e-9 {
				denom = 1
			}
			fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\t%.3f\n", o.Label, name, t, s, abs(t-s)/denom)
		}
	}
	tw.Flush()
	fmt.Println()
	names := make([]string, 0, len(sum))
	for k := range sum {
		names = append(names, k)
	}
	sort.Strings(names)
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tn\tMAPE\tPearson")
	for _, name := range names {
		s := sum[name]
		fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.4f\n", name, s.N, s.MAPE, s.Pearson)
	}
	tw.Flush()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
