package main

import (
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"attache/internal/loadgen"
	"attache/internal/tier"
)

func TestTierCap(t *testing.T) {
	if got := tierCap(-1); got != "unbounded" {
		t.Fatalf("tierCap(-1) = %q", got)
	}
	if got := tierCap(4096); got != "4096" {
		t.Fatalf("tierCap(4096) = %q", got)
	}
}

// TestPrintReport renders a fully-populated report (tier section,
// tenants, queue wait, errors) and checks every section appears.
func TestPrintReport(t *testing.T) {
	rep := loadgen.Report{
		Checksum:   "deadbeef",
		Events:     10,
		Ops:        20,
		OpsOK:      18,
		Duration:   time.Second,
		Throughput: 20,
		Errors:     map[string]uint64{"overloaded": 2},
		Latency:    map[string]loadgen.Quantiles{"read": {Count: 9}},
		QueueWait:  map[string]loadgen.Quantiles{"read": {Count: 9}},
		Tiers: &tier.Snapshot{
			Policy: "freq", NearCapacity: -1, NearResident: 3,
			NearReads: 5, FarReads: 4, Promotions: 3,
		},
		PerTenant: map[string]loadgen.TenantReport{
			"acme": {Events: 10, Ops: 20, OpsOK: 18, Shed: 2},
		},
	}

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	printReport(rep)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"plan checksum  deadbeef",
		"latency read",
		"qwait   read",
		"errors overloaded",
		"tiers  freq",
		"unbounded cap",
		"tier traffic",
		"far link",
		"tenant acme",
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}
