// Command attacheload is the deterministic load/chaos harness for the
// attache engine: a seeded open-loop workload of reads, writes, and
// batches driven either at an in-process engine (the default — measures
// the engine itself) or at a running attached daemon over HTTP (-target).
//
// The same -seed always produces the same op sequence regardless of
// -concurrency; the report prints the sequence checksum so two runs can
// be proven to have offered identical work:
//
//	go run ./cmd/attacheload -seed 42 -events 5000 -concurrency 1
//	go run ./cmd/attacheload -seed 42 -events 5000 -concurrency 16
//	# both print plan checksum 0f0b23...
//
// Chaos mode turns on the engine's seeded fault injection:
//
//	go run ./cmd/attacheload -seed 42 -fault-err 0.05 -fault-delay 0.05
//
// Workload scenarios: -scenario runs one of the named generative preset
// workloads (multi-client arrival processes, rate envelopes, and
// per-scenario address/payload generators — see -list-scenarios) instead
// of the flat seeded plan:
//
//	go run ./cmd/attacheload -scenario zipfian-hot-page -events 5000
//
// Replay: -replay re-offers a tracev1 NDJSON capture (recorded by
// attached -record, or exported by any tool speaking the format) in its
// original op order; -pace additionally honors the recorded arrival
// offsets, turning a capture into an open-loop load profile:
//
//	go run ./cmd/attacheload -replay capture.ndjson -pace
//
// Multi-tenant load: -tenants deals a comma-separated tenant list onto
// events round-robin (deterministic, invisible to the plan checksum);
// each event carries its tenant in the X-Attache-Tenant header when
// driving a daemon, and the report breaks ops/sheds/errors down per
// tenant — the harness half of the cluster's admission-control story:
//
//	go run ./cmd/attacheload -target http://localhost:8080 -tenants acme,globex
//
// The report covers throughput, per-kind latency quantiles, shed rate,
// and the full error taxonomy; -json emits it as one JSON object.
// -trace-queue-wait threads a pipeline trace through every event
// (in-process targets only) and adds per-kind queue-wait quantiles —
// the time ops sat in shard queues before a worker picked them up —
// so queueing delay can be told apart from service time.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"attache"
	"attache/client"
	"attache/internal/loadgen"
	"attache/internal/obs"
	"attache/internal/tier"
	"attache/internal/workload"
)

func main() {
	var (
		seed        = flag.Int64("seed", 42, "workload seed (same seed, same op sequence)")
		events      = flag.Int("events", 5000, "events to offer (a batch counts as one event)")
		concurrency = flag.Int("concurrency", runtime.GOMAXPROCS(0), "worker goroutines (does not change the op sequence)")
		space       = flag.Uint64("space", 1<<16, "line address space")
		readW       = flag.Int("read-weight", 3, "relative weight of read events")
		writeW      = flag.Int("write-weight", 1, "relative weight of write events")
		batchW      = flag.Int("batch-weight", 1, "relative weight of batch events")
		batchSize   = flag.Int("batch-size", 16, "ops per batch event")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate, events/sec (0 = unpaced)")
		opTimeout   = flag.Duration("op-timeout", 0, "per-event deadline (0 = none)")
		prefill     = flag.Int("prefill", 0, "lines to prefill (0 = space/2, -1 = none)")
		target      = flag.String("target", "", "drive a running attached daemon at this base URL instead of an in-process engine")
		scenario    = flag.String("scenario", "", "run a named generative workload scenario (see -list-scenarios)")
		listScen    = flag.Bool("list-scenarios", false, "list the preset workload scenarios and exit")
		replay      = flag.String("replay", "", "replay a tracev1 NDJSON capture (from attached -record) instead of generating a plan")
		pace        = flag.Bool("pace", false, "honor scenario/replay arrival offsets (open-loop at the recorded times)")
		tenants     = flag.String("tenants", "", "comma-separated tenants dealt round-robin across events (sent as the tenant header)")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
		logLevel    = flag.String("log-level", "warn", "harness log level: debug, info, warn, error")
		queueWait   = flag.Bool("trace-queue-wait", false, "trace every event through the engine pipeline and report per-kind queue-wait quantiles (in-process targets only)")

		// In-process engine shape (ignored with -target).
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "engine shard count")
		queueDepth = flag.Int("queue-depth", 64, "per-shard queue depth")
		tierSpec   = flag.String("tiers", "", `two-tier backend spec for the in-process engine, "near=LINES[,policy=lru|freq|static]..." (same syntax as attached -tiers; the report gains a tier section)`)

		// Chaos knobs (in-process only; ignored with -target).
		faultSeed     = flag.Int64("fault-seed", 1, "fault-injection seed")
		faultErr      = flag.Float64("fault-err", 0, "per-op injected-error probability [0,1]")
		faultDelay    = flag.Float64("fault-delay", 0, "per-op injected-delay probability [0,1]")
		faultDelayDur = flag.Duration("fault-delay-dur", 100*time.Microsecond, "injected delay duration")
		faultPartial  = flag.Float64("fault-partial", 0, "per-batch partial-failure probability [0,1]")
	)
	flag.Parse()

	if *listScen {
		for _, name := range workload.Names() {
			fmt.Printf("%-22s %s\n", name, workload.Describe(name))
		}
		return
	}
	if *scenario != "" && *replay != "" {
		log.Fatal("attacheload: -scenario and -replay are mutually exclusive")
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("attacheload: %v", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	var tenantList []string
	if *tenants != "" {
		for _, t := range strings.Split(*tenants, ",") {
			if t = strings.TrimSpace(t); t != "" {
				tenantList = append(tenantList, t)
			}
		}
	}

	cfg := loadgen.Config{
		Seed:           *seed,
		Events:         *events,
		Concurrency:    *concurrency,
		AddrSpace:      *space,
		ReadWeight:     *readW,
		WriteWeight:    *writeW,
		BatchWeight:    *batchW,
		BatchSize:      *batchSize,
		Rate:           *rate,
		OpTimeout:      *opTimeout,
		Prefill:        *prefill,
		Pace:           *pace,
		TraceQueueWait: *queueWait,
		Tenants:        tenantList,
	}

	// Scenario and replay modes bring their own event sequences; both
	// run through loadgen.RunEvents instead of the flat plan.
	var preplanned []loadgen.Event
	switch {
	case *scenario != "":
		spec, err := workload.Preset(*scenario, *seed, *events)
		if err != nil {
			log.Fatalf("attacheload: %v", err)
		}
		preplanned, err = workload.Compose(spec)
		if err != nil {
			log.Fatalf("attacheload: %v", err)
		}
		// The scenario owns the shape of the space and its baseline
		// residency; explicit -space/-prefill still win when given.
		if *space == 1<<16 {
			cfg.AddrSpace = spec.AddrSpace
		}
		if *prefill == 0 {
			cfg.Prefill = spec.Prefill
		}
		cfg.PrefillPayload = workload.PrefillPayload(spec)
		logger.Info("scenario", "name", spec.Name, "events", len(preplanned),
			"clients", len(spec.Clients), "addr_space", cfg.AddrSpace, "prefill", cfg.Prefill)
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatalf("attacheload: %v", err)
		}
		preplanned, err = workload.DecodeTrace(f)
		f.Close()
		if err != nil {
			log.Fatalf("attacheload: %v", err)
		}
		// A capture already contains its own writes; default to no
		// prefill so the replayed run is exactly the recorded load.
		if *prefill == 0 {
			cfg.Prefill = -1
		}
		logger.Info("replay", "path", *replay, "events", len(preplanned),
			"op_checksum", workload.OpChecksum(preplanned))
	}
	// Scenario and replay events bypass Plan, so deal tenants here.
	loadgen.AssignTenants(preplanned, tenantList)

	var tgt loadgen.Target
	if *target != "" {
		if *queueWait {
			logger.Warn("trace-queue-wait ignored: traces do not cross the HTTP boundary", "target", *target)
			cfg.TraceQueueWait = false
		}
		if *tierSpec != "" {
			logger.Warn("tiers ignored: the tier config belongs to the daemon (attached -tiers)", "target", *target)
		}
		tgt = client.New(*target, client.WithMaxRetries(0))
	} else {
		opts := []attache.Option{
			attache.WithShards(*shards),
			attache.WithQueueDepth(*queueDepth),
			attache.WithFaultPlan(attache.FaultPlan{
				Seed:     *faultSeed,
				ErrP:     *faultErr,
				DelayP:   *faultDelay,
				Delay:    *faultDelayDur,
				PartialP: *faultPartial,
			}),
		}
		if *tierSpec != "" {
			tc, err := tier.ParseSpec(*tierSpec)
			if err != nil {
				log.Fatalf("attacheload: -tiers: %v", err)
			}
			opts = append(opts, attache.WithTiers(*tc))
		}
		if *queueWait {
			// A rate-0 observer never samples on its own but makes the
			// engine honor the traces the harness puts in each context.
			opts = append(opts, attache.WithObserver(attache.NewObserver(attache.ObserverConfig{Logger: logger})))
		}
		eng, err := attache.NewEngine(opts...)
		if err != nil {
			log.Fatalf("attacheload: %v", err)
		}
		defer eng.Close()
		tgt = eng
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var rep loadgen.Report
	if preplanned != nil {
		rep, err = loadgen.RunEvents(ctx, tgt, cfg, preplanned)
	} else {
		rep, err = loadgen.Run(ctx, tgt, cfg)
	}
	if err != nil {
		log.Fatalf("attacheload: %v", err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatalf("attacheload: %v", err)
		}
		return
	}
	printReport(rep)
}

// tierCap renders a near-tier capacity (-1 = unbounded).
func tierCap(n int64) string {
	if n < 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%d", n)
}

func printReport(rep loadgen.Report) {
	fmt.Printf("plan checksum  %s\n", rep.Checksum)
	fmt.Printf("events         %d\n", rep.Events)
	fmt.Printf("ops            %d offered, %d ok\n", rep.Ops, rep.OpsOK)
	fmt.Printf("duration       %v\n", rep.Duration.Round(time.Millisecond))
	fmt.Printf("throughput     %.0f ops/sec\n", rep.Throughput)
	fmt.Printf("shed rate      %.4f\n", rep.ShedRate)

	kinds := make([]string, 0, len(rep.Latency))
	for k := range rep.Latency {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		q := rep.Latency[k]
		fmt.Printf("latency %-6s p50 %8.1fµs  p90 %8.1fµs  p99 %8.1fµs  max %8.1fµs  (n=%d)\n",
			k, q.P50Micros, q.P90Micros, q.P99Micros, q.MaxMicros, q.Count)
	}
	for _, k := range kinds {
		q, ok := rep.QueueWait[k]
		if !ok {
			continue
		}
		fmt.Printf("qwait   %-6s p50 %8.1fµs  p90 %8.1fµs  p99 %8.1fµs  max %8.1fµs  (n=%d)\n",
			k, q.P50Micros, q.P90Micros, q.P99Micros, q.MaxMicros, q.Count)
	}

	labels := make([]string, 0, len(rep.Errors))
	for l := range rep.Errors {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Printf("errors %-12s %d\n", l, rep.Errors[l])
	}
	if len(labels) == 0 {
		fmt.Println("errors         none")
	}

	if t := rep.Tiers; t != nil {
		fmt.Printf("tiers  %-12s near %d resident / %s cap, far %d resident\n",
			t.Policy, t.NearResident, tierCap(t.NearCapacity), t.FarResident)
		fmt.Printf("tier traffic   near %d reads %d writes, far %d reads %d writes, %d promoted %d demoted\n",
			t.NearReads, t.NearWrites, t.FarReads, t.FarWrites, t.Promotions, t.Demotions)
		fmt.Printf("far link       %.0f bytes, %.0fµs modeled latency, %.0f pJ total energy\n",
			t.FarLinkBytes, t.FarLatencyNs/1e3, t.EnergyPJ)
	}

	if len(rep.PerTenant) > 0 {
		names := make([]string, 0, len(rep.PerTenant))
		for name := range rep.PerTenant {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tr := rep.PerTenant[name]
			fmt.Printf("tenant %-12s events %6d  ops %6d offered, %6d ok, %6d shed\n",
				name, tr.Events, tr.Ops, tr.OpsOK, tr.Shed)
		}
	}
}
