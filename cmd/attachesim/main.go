// Command attachesim regenerates every table and figure of the Attaché
// paper's evaluation (MICRO 2018) on the built-in simulator.
//
// Usage:
//
//	attachesim -list
//	attachesim -experiment fig12
//	attachesim -experiment fig12,fig13 -scale 2 -seeds 42,1337 -v
//	attachesim -experiment all
//
// Scale multiplies the per-core memory-reference count (default 12000);
// the paper's shapes are stable from scale 1 upward. Results are printed
// as aligned tables with a final mean row where the paper reports an
// average.
//
// Simulations fan out across -parallel worker goroutines (default: all
// CPUs). Runs are deterministic and aggregated in a fixed order, so the
// tables are byte-identical at any parallelism. -cpuprofile/-memprofile
// write pprof profiles for performance work.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"attache/internal/config"
	"attache/internal/exp"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id(s), comma separated, or 'all'")
		scale      = flag.Float64("scale", 1.0, "run-length multiplier (1.0 = 12000 memory references per core)")
		seeds      = flag.String("seeds", "42", "comma-separated RNG seeds; results are averaged")
		verbose    = flag.Bool("v", false, "print one line per completed simulation run")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		format     = flag.String("format", "table", "output format: table or csv")
		outDir     = flag.String("out", "", "also write each result to <dir>/<id>.txt and <id>.csv")
		report     = flag.String("report", "", "run every experiment and write a markdown report to this file")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations (results are identical at any value)")
		checkMode  = flag.String("check", "off", "runtime checking: off, invariants, or oracle (validates the simulation; results are unchanged)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "attachesim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "attachesim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "attachesim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "attachesim: %v\n", err)
			}
		}()
	}

	h := exp.NewHarness(*scale)
	h.Parallelism = *parallel
	lvl, err := config.ParseCheckLevel(*checkMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "attachesim: %v\n", err)
		os.Exit(2)
	}
	h.Cfg.Check = lvl
	order, runners := h.Experiments()

	if *list {
		fmt.Println("available experiments (paper artifact -> id):")
		for _, id := range order {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	var seedVals []int64
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "attachesim: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		seedVals = append(seedVals, v)
	}
	h.Seeds = seedVals
	if *verbose {
		h.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "attachesim: %v\n", err)
			os.Exit(1)
		}
		if err := h.WriteReport(f); err != nil {
			fmt.Fprintf(os.Stderr, "attachesim: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "attachesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *report)
		return
	}

	ids := order
	if *experiment != "all" {
		ids = nil
		for _, id := range strings.Split(*experiment, ",") {
			id = strings.TrimSpace(id)
			if runners[id] == nil {
				fmt.Fprintf(os.Stderr, "attachesim: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	if *format != "table" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "attachesim: unknown format %q (want table or csv)\n", *format)
		os.Exit(2)
	}
	h.Prefetch(ids...)
	for _, id := range ids {
		start := time.Now()
		tab, err := runners[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "attachesim: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "csv" {
			fmt.Printf("# %s\n%s\n", id, tab.CSV())
		} else {
			fmt.Println(tab.String())
			fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "attachesim: %v\n", err)
				os.Exit(1)
			}
			for ext, content := range map[string]string{".txt": tab.String(), ".csv": tab.CSV()} {
				path := filepath.Join(*outDir, id+ext)
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "attachesim: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}
