// Command linecomp analyzes real data with the Attaché compression stack:
// it splits input into 64-byte cachelines, runs BDI and FPC over each,
// and reports the Fig.-4-style compressibility profile plus what an
// Attaché memory system would achieve on this data (sub-rank transfers
// saved, CID collision count through the real scrambler).
//
// Usage:
//
//	linecomp file1 [file2 ...]
//	some-producer | linecomp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"attache/internal/blem"
	"attache/internal/compress"
	"attache/internal/scramble"
)

type report struct {
	lines       int
	bdiWins     int
	fpcWins     int
	incompress  int
	zeroLines   int
	sizeBuckets [9]int // <=1,2-4,5-8,9-12,13-16,17-22,23-30,31-63,64
	bytesRaw    int64
	bytesPacked int64
	collisions  int
}

func bucketFor(size int) int {
	switch {
	case size <= 1:
		return 0
	case size <= 4:
		return 1
	case size <= 8:
		return 2
	case size <= 12:
		return 3
	case size <= 16:
		return 4
	case size <= 22:
		return 5
	case size <= 30:
		return 6
	case size <= 63:
		return 7
	default:
		return 8
	}
}

var bucketNames = [9]string{"1B", "2-4B", "5-8B", "9-12B", "13-16B", "17-22B", "23-30B", "31-63B", "64B"}

func analyze(r io.Reader, eng *compress.Engine, bl *blem.Engine, scr *scramble.Scrambler, rep *report) error {
	buf := make([]byte, compress.LineSize)
	addr := uint64(rep.lines)
	for {
		n, err := io.ReadFull(r, buf)
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			for i := n; i < len(buf); i++ {
				buf[i] = 0 // zero-pad the tail line
			}
		} else if err != nil {
			return err
		}
		rep.lines++
		rep.bytesRaw += compress.LineSize

		c := eng.Compress(buf)
		packed := c.Pack()
		rep.sizeBuckets[bucketFor(len(packed))]++
		switch c.Algo {
		case compress.AlgoBDI:
			rep.bdiWins++
			if packed[0] == byte(compress.BDIZeros) {
				rep.zeroLines++
			}
			rep.bytesPacked += 32 // one sub-rank block
		case compress.AlgoFPC:
			rep.fpcWins++
			rep.bytesPacked += 32
		default:
			rep.incompress++
			rep.bytesPacked += 64
			// Uncompressed lines go through scramble + BLEM: count the
			// real CID collisions this data would produce.
			scrambled := scr.Scrambled(addr, buf)
			if _, collision := bl.StoreUncompressed(addr, scrambled); collision {
				rep.collisions++
			}
		}
		addr++
		if err == io.ErrUnexpectedEOF {
			return nil
		}
	}
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [file ...]   (reads stdin when no files given)\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()

	eng := compress.NewEngine()
	bl := blem.NewEngine(15, 0x41747461)
	scr := scramble.New(0xC0FFEE)
	rep := &report{}

	if flag.NArg() == 0 {
		if err := analyze(os.Stdin, eng, bl, scr, rep); err != nil {
			fmt.Fprintf(os.Stderr, "linecomp: stdin: %v\n", err)
			os.Exit(1)
		}
	}
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linecomp: %v\n", err)
			os.Exit(1)
		}
		err = analyze(f, eng, bl, scr, rep)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "linecomp: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if rep.lines == 0 {
		fmt.Println("no input")
		return
	}
	pct := func(n int) float64 { return float64(n) / float64(rep.lines) * 100 }
	comp := rep.bdiWins + rep.fpcWins
	fmt.Printf("lines analyzed:            %d (%d bytes)\n", rep.lines, rep.bytesRaw)
	fmt.Printf("compressible to <=30B:     %d (%.1f%%)   [paper Fig. 4 avg: ~50%%]\n", comp, pct(comp))
	fmt.Printf("  won by BDI:              %d (%.1f%%), of which all-zero: %d\n", rep.bdiWins, pct(rep.bdiWins), rep.zeroLines)
	fmt.Printf("  won by FPC:              %d (%.1f%%)\n", rep.fpcWins, pct(rep.fpcWins))
	fmt.Printf("incompressible:            %d (%.1f%%)\n", rep.incompress, pct(rep.incompress))
	fmt.Printf("CID collisions (15-bit):   %d (expected ~%.2f)\n",
		rep.collisions, float64(rep.incompress)/32768)
	fmt.Printf("sub-rank bytes if stored:  %d (%.1f%% of raw; 50%% is the floor)\n",
		rep.bytesPacked, float64(rep.bytesPacked)/float64(rep.bytesRaw)*100)
	fmt.Println("\npacked size distribution:")
	for i, n := range rep.sizeBuckets {
		if n == 0 {
			continue
		}
		bar := ""
		for j := 0; j < int(pct(n)/2); j++ {
			bar += "#"
		}
		fmt.Printf("  %-7s %7d (%5.1f%%) %s\n", bucketNames[i], n, pct(n), bar)
	}
}
