// Graph analytics: run a GAP-style graph kernel (PageRank on a power-law
// graph) through the full performance simulator and compare the four
// memory-system organizations of the paper.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	"attache/internal/config"
	"attache/internal/exp"
	"attache/internal/trace"
)

func main() {
	prof, err := trace.ByName("pr.kron")
	if err != nil {
		log.Fatal(err)
	}
	cfg := config.Default()

	fmt.Printf("workload: %s (%s pattern, %.0f%% lines compressible, %d MB/core)\n\n",
		prof.Name, prof.Pattern, prof.CompressibleFrac*100, prof.FootprintBytes>>20)

	kinds := []config.SystemKind{
		config.SystemBaseline, config.SystemMDCache,
		config.SystemAttache, config.SystemIdeal,
	}
	var baseCycles float64
	fmt.Printf("%-10s %12s %9s %10s %12s %9s\n",
		"system", "cycles", "speedup", "requests", "bytes-moved", "latency")
	for _, k := range kinds {
		m, err := exp.Run(exp.RunConfig{
			Cfg:             cfg,
			Kind:            k,
			Profiles:        exp.RateMode(prof, cfg.CPU.Cores),
			AccessesPerCore: 8000,
			Seed:            42,
		})
		if err != nil {
			log.Fatal(err)
		}
		if k == config.SystemBaseline {
			baseCycles = float64(m.Cycles)
		}
		fmt.Printf("%-10s %12d %8.3fx %10d %12d %8.0fc\n",
			k, m.Cycles, baseCycles/float64(m.Cycles), m.TotalRequests, m.BytesMoved, m.AvgReadLatency)
		if k == config.SystemAttache {
			fmt.Printf("%-10s   COPR accuracy %.1f%%, %d correction reads, %d RA accesses\n",
				"", m.CoprAccuracy*100, m.CorrectionReads, m.RAReads+m.RAWrites)
		}
		if k == config.SystemMDCache {
			fmt.Printf("%-10s   metadata-cache hit rate %.1f%%, +%d metadata requests\n",
				"", m.MDHitRate*100, m.MetaReads+m.MetaWrites)
		}
	}
	fmt.Println("\nAttaché removes the metadata requests entirely; its only overhead")
	fmt.Println("is the corrective half-line fetch after a wrong COPR prediction.")
}
