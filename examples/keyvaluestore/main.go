// Key-value store: a small in-memory KV store whose value storage lives
// in an Attaché compressed memory. Values are serialized into 64-byte
// lines; the store reports how much memory bandwidth compression saved
// for a realistic record mix.
//
//	go run ./examples/keyvaluestore
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"attache"
)

// kvStore maps string keys to value locations inside an Attaché memory.
type kvStore struct {
	mem      *attache.Memory
	index    map[string][]uint64 // key -> line addresses
	lengths  map[string]int
	nextLine uint64
	free     [][]uint64
}

func newKVStore() (*kvStore, error) {
	mem, err := attache.NewMemoryWith()
	if err != nil {
		return nil, err
	}
	return &kvStore{
		mem:     mem,
		index:   map[string][]uint64{},
		lengths: map[string]int{},
	}, nil
}

// Put stores value under key, padding it into 64-byte lines.
func (s *kvStore) Put(key string, value []byte) error {
	if old, ok := s.index[key]; ok {
		s.free = append(s.free, old)
	}
	nLines := (len(value) + attache.LineSize - 1) / attache.LineSize
	var addrs []uint64
	if n := len(s.free); n > 0 && len(s.free[n-1]) >= nLines {
		addrs = s.free[n-1][:nLines]
		s.free = s.free[:n-1]
	} else {
		for i := 0; i < nLines; i++ {
			addrs = append(addrs, s.nextLine)
			s.nextLine++
		}
	}
	for i, addr := range addrs {
		line := make([]byte, attache.LineSize)
		copy(line, value[i*attache.LineSize:])
		if err := s.mem.Write(addr, line); err != nil {
			return err
		}
	}
	s.index[key] = addrs
	s.lengths[key] = len(value)
	return nil
}

// Get retrieves the value stored under key.
func (s *kvStore) Get(key string) ([]byte, bool, error) {
	addrs, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, 0, len(addrs)*attache.LineSize)
	for _, addr := range addrs {
		line, err := s.mem.Read(addr)
		if err != nil {
			return nil, false, err
		}
		out = append(out, line...)
	}
	return out[:s.lengths[key]], true, nil
}

// makeRecord builds a typical small "user record": integer ids, counters
// and timestamps (highly compressible), plus an opaque random token.
func makeRecord(rng *rand.Rand, id int) []byte {
	rec := make([]byte, 0, 192)
	var scratch [8]byte
	appendU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		rec = append(rec, scratch[:]...)
	}
	appendU64(uint64(id))
	appendU64(uint64(1700000000 + id*60)) // created-at
	appendU64(uint64(1700000000 + id*61)) // updated-at
	for i := 0; i < 12; i++ {
		appendU64(uint64(rng.Intn(1000))) // counters, flags, small enums
	}
	token := make([]byte, 32) // opaque auth token: incompressible
	rng.Read(token)
	return append(rec, token...)
}

func main() {
	store, err := newKVStore()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2024))

	const records = 5000
	for i := 0; i < records; i++ {
		if err := store.Put(fmt.Sprintf("user:%06d", i), makeRecord(rng, i)); err != nil {
			log.Fatal(err)
		}
	}

	// A read-heavy serving phase with a skewed key distribution.
	hits := 0
	for i := 0; i < 30000; i++ {
		id := rng.Intn(records)
		if rng.Intn(4) != 0 {
			id = rng.Intn(records / 10) // hot decile
		}
		v, ok, err := store.Get(fmt.Sprintf("user:%06d", id))
		if err != nil {
			log.Fatal(err)
		}
		if ok && binary.LittleEndian.Uint64(v) == uint64(id) {
			hits++
		}
	}

	st := store.mem.StatsSnapshot()
	fmt.Println("Attaché-backed key-value store")
	fmt.Printf("  records:            %d (%d lines)\n", records, st.Lines)
	fmt.Printf("  lookups verified:   %d\n", hits)
	fmt.Printf("  compressed lines:   %.1f%%\n", st.CompressedLineRatio()*100)
	fmt.Printf("  bandwidth savings:  %.1f%% of sub-rank transfers avoided\n",
		st.BandwidthSavings()*100)
	fmt.Printf("  COPR accuracy:      %.1f%%\n", st.PredictionAccuracy*100)
	fmt.Printf("  RA (CID collision): %d accesses across %d operations\n",
		st.RAAccesses, st.Reads+st.Writes)
}
