// Quickstart: store and load cachelines through the Attaché framework and
// watch the bandwidth accounting.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"attache"
)

func main() {
	// Functional options; attache.NewMemory(attache.DefaultOptions())
	// still works for struct-style configuration.
	mem, err := attache.NewMemoryWith(attache.WithSeed(0x41747461))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	const lines = 4096

	// Half the data is "array-like" (a common base plus small deltas —
	// exactly what BDI compresses); the other half is random.
	for addr := uint64(0); addr < lines; addr++ {
		line := make([]byte, attache.LineSize)
		if addr%2 == 0 {
			base := uint64(0x7F0000000000) + addr*4096
			for w := 0; w < 8; w++ {
				binary.LittleEndian.PutUint64(line[w*8:], base+uint64(rng.Intn(512)))
			}
		} else {
			rng.Read(line)
		}
		if err := mem.Write(addr, line); err != nil {
			log.Fatal(err)
		}
	}

	// Read everything back twice: the first pass trains COPR, the second
	// enjoys it.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < lines; addr++ {
			if _, err := mem.Read(addr); err != nil {
				log.Fatal(err)
			}
		}
	}

	st := mem.StatsSnapshot()
	fmt.Println("Attaché quickstart")
	fmt.Printf("  lines stored:          %d\n", st.Lines)
	fmt.Printf("  compressed lines:      %d (%.1f%%)\n",
		st.CompressedLines, st.CompressedLineRatio()*100)
	fmt.Printf("  reads / writes:        %d / %d\n", st.Reads, st.Writes)
	fmt.Printf("  32B blocks moved:      %d (uncompressed system would move %d)\n",
		st.BlocksRead+st.BlocksWritten, 2*(st.Reads+st.Writes))
	fmt.Printf("  bandwidth savings:     %.1f%%\n", st.BandwidthSavings()*100)
	fmt.Printf("  COPR accuracy:         %.1f%%\n", st.PredictionAccuracy*100)
	fmt.Printf("  mispredictions:        %d\n", st.Mispredictions)
	fmt.Printf("  replacement-area uses: %d (CID collisions)\n", st.RAAccesses)
	fmt.Printf("  SRAM overhead:         %d KB\n", mem.Framework().StorageOverheadBytes()>>10)
}
