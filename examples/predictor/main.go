// Predictor ablation: drive COPR with synthetic access patterns and show
// how each component (GI, PaPR, LiPR) contributes — the intuition behind
// the paper's Fig. 17.
//
//	go run ./examples/predictor
package main

import (
	"fmt"
	"math/rand"

	"attache/internal/copr"
)

// pattern produces (address, compressible) observations.
type pattern struct {
	name string
	next func(rng *rand.Rand) (addr uint64, compressed bool)
}

func patterns() []pattern {
	const page = 4096
	return []pattern{
		{
			// Whole application compressible: GI alone suffices.
			name: "globally compressible",
			next: func(rng *rand.Rand) (uint64, bool) {
				return uint64(rng.Intn(1 << 28)), true
			},
		},
		{
			// Uniform pages, half compressible: page-level signal.
			name: "uniform pages (50/50)",
			next: func(rng *rand.Rand) (uint64, bool) {
				p := uint64(rng.Intn(4096))
				return p*page + uint64(rng.Intn(64))*64, p%2 == 0
			},
		},
		{
			// Mixed pages: even lines compressible, odd not. Only a
			// line-granular structure can get this right.
			name: "line-mixed pages",
			next: func(rng *rand.Rand) (uint64, bool) {
				p := uint64(rng.Intn(256))
				line := uint64(rng.Intn(64))
				return p*page + line*64, line%2 == 0
			},
		},
	}
}

type variant struct {
	name           string
	gi, papr, lipr bool
}

func main() {
	variants := []variant{
		{"GI only", true, false, false},
		{"PaPR only", false, true, false},
		{"PaPR+GI", true, true, false},
		{"full (PaPR+GI+LiPR)", true, true, true},
	}

	fmt.Println("COPR component ablation (prediction accuracy, 100K accesses each)")
	fmt.Printf("%-24s", "pattern")
	for _, v := range variants {
		fmt.Printf("  %-20s", v.name)
	}
	fmt.Println()

	for _, pat := range patterns() {
		fmt.Printf("%-24s", pat.name)
		for _, v := range variants {
			cfg := copr.DefaultConfig()
			cfg.EnableGI, cfg.EnablePaPR, cfg.EnableLiPR = v.gi, v.papr, v.lipr
			p := copr.New(cfg)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 100000; i++ {
				addr, compressed := pat.next(rng)
				p.Update(addr, compressed)
			}
			fmt.Printf("  %-20s", fmt.Sprintf("%.1f%%", p.Accuracy()*100))
		}
		fmt.Println()
	}
	fmt.Println("\nLiPR only pays off on line-mixed pages — matching the paper's")
	fmt.Println("observation that it matters mainly for mixed workloads (Fig. 17).")
}
