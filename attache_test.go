package attache_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"attache"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow.
func TestPublicAPIQuickstart(t *testing.T) {
	mem, err := attache.NewMemory(attache.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, attache.LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 0x1000+uint64(i))
	}
	if err := mem.Write(42, line); err != nil {
		t.Fatal(err)
	}
	back, err := mem.Read(42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, line) {
		t.Fatal("round trip mismatch")
	}
	if s := mem.StatsSnapshot().BandwidthSavings(); s <= 0 {
		t.Fatalf("compressible data saved no bandwidth (%.3f)", s)
	}
	// Two snapshots with no traffic in between agree: StatsSnapshot is the
	// one supported stats surface (the old exported Stats field is gone).
	if mem.StatsSnapshot() != mem.StatsSnapshot() {
		t.Fatal("back-to-back snapshots diverged")
	}
}

func TestPublicFramework(t *testing.T) {
	f, err := attache.New(attache.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.StorageOverheadBytes() < 368<<10 {
		t.Fatal("predictor storage below the paper's 368KB")
	}
	line := make([]byte, attache.LineSize)
	st, tr, err := f.Store(7, line)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Compressed || tr.BlocksTouched != 1 {
		t.Fatal("zero line must compress into one sub-rank block")
	}
	got, _, err := f.Load(7, st)
	if err != nil || !bytes.Equal(got, line) {
		t.Fatal("load failed")
	}
}

// TestFunctionalOptions checks the options surface composes and agrees
// with the classic Options struct.
func TestFunctionalOptions(t *testing.T) {
	mem, err := attache.NewMemoryWith(
		attache.WithCIDWidth(13),
		attache.WithSeed(99),
		attache.WithPredictorSizing(attache.DefaultPredictorConfig()),
	)
	if err != nil {
		t.Fatal(err)
	}
	o := attache.DefaultOptions()
	o.CIDBits = 13
	o.Seed = 99
	ref, err := attache.NewMemory(o)
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, attache.LineSize)
	for a := uint64(0); a < 64; a++ {
		line[0] = byte(a)
		if err := mem.Write(a, line); err != nil {
			t.Fatal(err)
		}
		if err := ref.Write(a, line); err != nil {
			t.Fatal(err)
		}
	}
	if mem.StatsSnapshot() != ref.StatsSnapshot() {
		t.Fatal("functional options diverge from the equivalent Options struct")
	}

	// WithOptions bridges the struct into the options chain; a later
	// option overrides it.
	mem2, err := attache.NewMemoryWith(attache.WithOptions(o), attache.WithSeed(100))
	if err != nil {
		t.Fatal(err)
	}
	if mem2 == nil {
		t.Fatal("nil memory")
	}
	if _, err := attache.NewMemoryWith(attache.WithCIDWidth(0)); !errors.Is(err, attache.ErrOutOfRange) {
		t.Fatalf("CID width 0 err = %v, want ErrOutOfRange", err)
	}
}

// TestSentinelErrors checks the typed errors flow through the public API.
func TestSentinelErrors(t *testing.T) {
	mem, err := attache.NewMemoryWith()
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Write(1, []byte("too short")); !errors.Is(err, attache.ErrBadLineSize) {
		t.Fatalf("short write err = %v, want ErrBadLineSize", err)
	}
	if _, err := mem.Read(1); !errors.Is(err, attache.ErrNeverWritten) {
		t.Fatalf("unwritten read err = %v, want ErrNeverWritten", err)
	}
}

// TestMemoryBatch checks the fail-fast Memory batch helpers.
func TestMemoryBatch(t *testing.T) {
	mem, err := attache.NewMemoryWith()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(fill byte) []byte {
		l := make([]byte, attache.LineSize)
		for i := range l {
			l[i] = fill
		}
		return l
	}
	if err := mem.BatchWrite([]uint64{1, 2, 3}, [][]byte{mk(1), mk(2), mk(3)}); err != nil {
		t.Fatal(err)
	}
	got, err := mem.BatchRead([]uint64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[0], mk(3)) || !bytes.Equal(got[1], mk(1)) {
		t.Fatal("batch read order not preserved")
	}
	// Fail-fast: the error names the op and wraps the sentinel; the
	// successful prefix is returned.
	got, err = mem.BatchRead([]uint64{1, 99, 2})
	if !errors.Is(err, attache.ErrNeverWritten) {
		t.Fatalf("batch read err = %v, want ErrNeverWritten", err)
	}
	if len(got) != 1 {
		t.Fatalf("batch read prefix = %d lines, want 1", len(got))
	}
}

// TestPublicEngine smoke-tests the concurrent entry point through the
// public surface; the heavy concurrency coverage lives in internal/shard.
func TestPublicEngine(t *testing.T) {
	eng, err := attache.NewEngine(attache.WithShards(2), attache.WithMaxLines(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	line := make([]byte, attache.LineSize)
	if err := eng.Write(5, line); err != nil {
		t.Fatal(err)
	}
	back, err := eng.Read(5)
	if err != nil || !bytes.Equal(back, line) {
		t.Fatalf("engine round trip: %v", err)
	}
	if err := eng.Write(4096, line); !errors.Is(err, attache.ErrOutOfRange) {
		t.Fatalf("beyond MaxLines err = %v, want ErrOutOfRange", err)
	}
	res, err := eng.Do([]attache.Op{{Write: true, Addr: 6, Data: line}, {Addr: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[1].Err != nil || !bytes.Equal(res[1].Data, line) {
		t.Fatal("engine batch round trip failed")
	}
	snap := eng.StatsSnapshot()
	if snap.Total.Writes != 2 || snap.Total.Reads != 2 || len(snap.PerShard) != 2 {
		t.Fatalf("engine snapshot off: %+v", snap.Total)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Read(5); !errors.Is(err, attache.ErrClosed) {
		t.Fatalf("read after close err = %v, want ErrClosed", err)
	}
}
