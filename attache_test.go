package attache_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"attache"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow.
func TestPublicAPIQuickstart(t *testing.T) {
	mem, err := attache.NewMemory(attache.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, attache.LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 0x1000+uint64(i))
	}
	if err := mem.Write(42, line); err != nil {
		t.Fatal(err)
	}
	back, err := mem.Read(42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, line) {
		t.Fatal("round trip mismatch")
	}
	if s := mem.Stats.BandwidthSavings(); s <= 0 {
		t.Fatalf("compressible data saved no bandwidth (%.3f)", s)
	}
}

func TestPublicFramework(t *testing.T) {
	f, err := attache.New(attache.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.StorageOverheadBytes() < 368<<10 {
		t.Fatal("predictor storage below the paper's 368KB")
	}
	line := make([]byte, attache.LineSize)
	st, tr, err := f.Store(7, line)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Compressed || tr.BlocksTouched != 1 {
		t.Fatal("zero line must compress into one sub-rank block")
	}
	got, _, err := f.Load(7, st)
	if err != nil || !bytes.Equal(got, line) {
		t.Fatal("load failed")
	}
}
