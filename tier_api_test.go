package attache_test

import (
	"bytes"
	"reflect"
	"testing"

	"attache"
)

// TestPublicTieredEngine: the public tiering surface — WithTiers builds
// a tiered engine whose tier books conserve, and DefaultTierLink is a
// usable link model.
func TestPublicTieredEngine(t *testing.T) {
	cfg := attache.TierConfig{NearLines: 8, Link: attache.DefaultTierLink()}
	eng, err := attache.NewEngine(attache.WithShards(2), attache.WithTiers(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.Tiered() {
		t.Fatal("WithTiers engine reports untiered")
	}

	line := make([]byte, attache.LineSize)
	for i := 0; i < 64; i++ {
		line[0] = byte(i)
		if err := eng.Write(uint64(i%16), line); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Read(uint64(i % 16)); err != nil {
			t.Fatal(err)
		}
	}
	ts, ok := eng.TierSnapshot()
	if !ok {
		t.Fatal("tiered engine has no tier snapshot")
	}
	if ts.Promotions != ts.Demotions+ts.NearResident {
		t.Fatalf("tier books do not conserve: %+v", ts)
	}
	if ts.NearReads+ts.FarReads == 0 {
		t.Fatalf("no reads booked: %+v", ts)
	}

	if link := attache.DefaultTierLink(); link.FarLatencyNs <= 0 || link.FarBandwidthMult <= 0 {
		t.Fatalf("DefaultTierLink is degenerate: %+v", link)
	}
}

// TestPublicRestoreEngine: WriteSnapshot → RestoreEngine through the
// public API reproduces contents and books exactly.
func TestPublicRestoreEngine(t *testing.T) {
	eng, err := attache.NewEngine(attache.WithShards(2), attache.WithTiers(attache.TierConfig{NearLines: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	line := make([]byte, attache.LineSize)
	for i := 0; i < 32; i++ {
		line[1] = byte(i)
		if err := eng.Write(uint64(i), line); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := attache.RestoreEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	if a, b := eng.StatsSnapshot(), re.StatsSnapshot(); !reflect.DeepEqual(a, b) {
		t.Fatalf("restored stats diverged:\noriginal %+v\nrestored %+v", a, b)
	}
	for i := 0; i < 32; i++ {
		want, err := eng.Read(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := re.Read(uint64(i))
		if err != nil {
			t.Fatalf("restored read %d: %v", i, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("line %d diverged after restore", i)
		}
	}

	// WithTiers must be absent on restore — the snapshot is authoritative.
	buf.Reset()
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := attache.RestoreEngine(&buf, attache.WithTiers(attache.TierConfig{NearLines: 4})); err == nil {
		t.Fatal("RestoreEngine accepted a caller tier config")
	}
}
