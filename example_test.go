package attache_test

import (
	"encoding/binary"
	"fmt"

	"attache"
)

// ExampleMemory demonstrates the compressed-memory container: write a
// cacheline of array-like data, read it back, and inspect the traffic.
func ExampleMemory() {
	mem, err := attache.NewMemory(attache.DefaultOptions())
	if err != nil {
		panic(err)
	}
	line := make([]byte, attache.LineSize)
	for w := 0; w < 8; w++ {
		binary.LittleEndian.PutUint64(line[w*8:], 0x1000_0000+uint64(w)*8)
	}
	if err := mem.Write(42, line); err != nil {
		panic(err)
	}
	back, err := mem.Read(42)
	if err != nil {
		panic(err)
	}
	snap := mem.StatsSnapshot()
	fmt.Println("round trip ok:", binary.LittleEndian.Uint64(back) == 0x1000_0000)
	fmt.Println("compressed lines:", snap.CompressedLines)
	fmt.Println("blocks written:", snap.BlocksWritten, "(an uncompressed system writes 2)")
	// Output:
	// round trip ok: true
	// compressed lines: 1
	// blocks written: 1 (an uncompressed system writes 2)
}

// ExampleFramework shows the controller-level flow: store produces the
// physical sub-rank image, load reconstructs the data and reports the
// access trace the paper's evaluation counts.
func ExampleFramework() {
	f, err := attache.New(attache.DefaultOptions())
	if err != nil {
		panic(err)
	}
	zero := make([]byte, attache.LineSize) // an all-zero line: maximally compressible
	stored, tr, err := f.Store(7, zero)
	if err != nil {
		panic(err)
	}
	fmt.Println("stored compressed:", stored.Compressed)
	fmt.Println("sub-rank blocks touched:", tr.BlocksTouched)
	data, _, err := f.Load(7, stored)
	if err != nil {
		panic(err)
	}
	fmt.Println("loaded bytes equal:", string(data) == string(zero))
	// Output:
	// stored compressed: true
	// sub-rank blocks touched: 1
	// loaded bytes equal: true
}
