# Developer entry points. Everything here is a thin wrapper over go
# tooling and scripts/ so CI and local runs stay identical.

GO ?= go

.PHONY: build test race bench bench-gate bench-pin fmt vet scenarios scenarios-update

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The benchmarks the gate pins, once, with allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput$$' -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkShardedThroughput$$|BenchmarkSubmitLatency$$' -benchmem ./internal/shard

# Compare min-of-5 against scripts/bench_baseline.txt; fails on
# regression and on >BENCH_GATE_IMPROVE_TOL% unexplained improvement.
bench-gate:
	./scripts/bench_gate.sh

# Re-pin scripts/bench_baseline.txt via min-of-5 in one step. Run this
# on the machine the gate will run on, and commit the result together
# with the change that moved the numbers.
bench-pin:
	UPDATE=1 ./scripts/bench_gate.sh

# Run every preset workload scenario against its golden behavioral
# profile (internal/workload/testdata/golden/).
scenarios:
	$(GO) test ./internal/workload -count=1 -run 'TestScenarioGolden' -v

# Regenerate the golden profiles after an intentional behavior change;
# commit the diff together with the change and a justification.
scenarios-update:
	$(GO) test ./internal/workload -count=1 -run 'TestScenarioGolden' -update

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
