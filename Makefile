# Developer entry points. Everything here is a thin wrapper over go
# tooling and scripts/ so CI and local runs stay identical.

GO ?= go

.PHONY: build test race bench bench-gate bench-pin fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The benchmarks the gate pins, once, with allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput$$' -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkShardedThroughput$$|BenchmarkSubmitLatency$$' -benchmem ./internal/shard

# Compare min-of-5 against scripts/bench_baseline.txt; fails on
# regression and on >BENCH_GATE_IMPROVE_TOL% unexplained improvement.
bench-gate:
	./scripts/bench_gate.sh

# Re-pin scripts/bench_baseline.txt via min-of-5 in one step. Run this
# on the machine the gate will run on, and commit the result together
# with the change that moved the numbers.
bench-pin:
	UPDATE=1 ./scripts/bench_gate.sh

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
