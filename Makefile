# Developer entry points. Everything here is a thin wrapper over go
# tooling and scripts/ so CI and local runs stay identical.

GO ?= go

.PHONY: build test race bench bench-gate bench-pin fmt vet scenarios scenarios-update \
	ci fmt-check twin-calibrate twin-update crossover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Mirror of CI's test job (minus the race passes, which `make race`
# covers): run this before pushing and the test job cannot surprise you.
ci: vet fmt-check build test
	./scripts/coverage_ratchet.sh
	./scripts/twin_gate.sh

# gofmt as a check (CI mode), not a rewrite: lists offending files and
# fails, leaving the tree untouched.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the analytical-twin calibration sweep against the simulator and
# enforce the committed tolerance bands — CI's twin-calibration job.
twin-calibrate:
	./scripts/twin_gate.sh

# Regenerate internal/twin/testdata/calibration.json from the observed
# sweep after an intentional model or engine change. Refuses to write
# bands looser than the hard acceptance ceilings; commit the diff with
# the change that moved the numbers.
twin-update:
	$(GO) test ./internal/twin -count=1 -run TestCalibration -update

# Assert the sharding crossover claim (shards4 beats baseline-memory
# wall-clock) — CI's crossover job. Skips below 4 CPUs.
crossover:
	./scripts/crossover_gate.sh

race:
	$(GO) test -race ./...

# The benchmarks the gate pins, once, with allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput$$' -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkShardedThroughput$$|BenchmarkSubmitLatency$$' -benchmem ./internal/shard

# Compare min-of-5 against scripts/bench_baseline.txt; fails on
# regression and on >BENCH_GATE_IMPROVE_TOL% unexplained improvement.
bench-gate:
	./scripts/bench_gate.sh

# Re-pin scripts/bench_baseline.txt via min-of-5 in one step. Run this
# on the machine the gate will run on, and commit the result together
# with the change that moved the numbers.
bench-pin:
	UPDATE=1 ./scripts/bench_gate.sh

# Run every preset workload scenario against its golden behavioral
# profile (internal/workload/testdata/golden/).
scenarios:
	$(GO) test ./internal/workload -count=1 -run 'TestScenarioGolden' -v

# Regenerate the golden profiles after an intentional behavior change;
# commit the diff together with the change and a justification.
scenarios-update:
	$(GO) test ./internal/workload -count=1 -run 'TestScenarioGolden' -update

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
